//! # cfpd-particles — Lagrangian aerosol transport (§2.1)
//!
//! Implements the particle physics of the paper: Newton's second law
//! (eq. 3) under drag with Ganser's correlation (eqs. 6–8), gravity and
//! buoyancy (eqs. 4–5), integrated with Newmark's method at dt = 1e-4 s,
//! over the unstructured hybrid mesh via an element-walk locator.
//!
//! The module also exposes the *load profile* of the particle phase
//! ([`tracker::particles_per_owner`]): all particles enter through the
//! inlet, so at injection the entire particle workload lands on the few
//! ranks owning inlet elements — the paper's L₉₆ = 0.02 imbalance.

pub mod forces;
pub mod locator;
pub mod physics;
pub mod tracker;

pub use forces::{
    buoyancy_force, drag_force, ganser_cd, gravity_force, particle_reynolds,
    stokes_terminal_velocity, total_force, ParticleProps,
};
pub use locator::{Locator, WalkResult};
pub use physics::{saffman_lift, DispersionRng, TransportModel};
pub use tracker::{
    inject_at_inlet, particles_per_owner, step_particles, step_particles_with, ParticleCensus,
    ParticleSet, ParticleState, StepStats,
};
