//! Lagrangian particle transport: Newmark time integration of Newton's
//! second law (eq. 3) under drag/gravity/buoyancy, with element-walk
//! relocation, wall deposition and outlet escape.
//!
//! Particles are injected through the nasal/mouth inlet — which places
//! all of them in one or few MPI subdomains at injection time and causes
//! the extreme particle-phase load imbalance (L₉₆ = 0.02) reported in
//! Table 1 of the paper.

use crate::forces::ParticleProps;
use crate::locator::{Locator, WalkResult};
use cfpd_mesh::{BoundaryKind, Vec3};
use cfpd_testkit::rng::Rng;

/// Life-cycle state of a particle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParticleState {
    /// Being transported; `elem` is valid.
    Active,
    /// Stuck to an airway wall (therapeutically: lost dose... unless the
    /// wall was the target site).
    Deposited,
    /// Left through a distal outlet (reached the deeper lung).
    Escaped,
    /// Walk failed and global relocation found no element.
    Lost,
}

/// Structure-of-arrays particle storage (cache-friendly for the per-step
/// sweep, as a production tracking code uses).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ParticleSet {
    pub pos: Vec<Vec3>,
    pub vel: Vec<Vec3>,
    pub acc: Vec<Vec3>,
    pub elem: Vec<u32>,
    pub state: Vec<ParticleState>,
    pub props: Vec<ParticleProps>,
}

/// Aggregate counts per state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ParticleCensus {
    pub active: usize,
    pub deposited: usize,
    pub escaped: usize,
    pub lost: usize,
}

impl ParticleSet {
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    pub fn census(&self) -> ParticleCensus {
        let mut c = ParticleCensus::default();
        for s in &self.state {
            match s {
                ParticleState::Active => c.active += 1,
                ParticleState::Deposited => c.deposited += 1,
                ParticleState::Escaped => c.escaped += 1,
                ParticleState::Lost => c.lost += 1,
            }
        }
        c
    }

    fn push(&mut self, pos: Vec3, vel: Vec3, elem: u32, props: ParticleProps) {
        self.pos.push(pos);
        self.vel.push(vel);
        self.acc.push(Vec3::ZERO);
        self.elem.push(elem);
        self.state.push(ParticleState::Active);
        self.props.push(props);
    }
}

/// Inject `count` particles uniformly over the inlet disc (radius
/// `inlet_radius` around `inlet_center`, moving at `initial_speed` along
/// `direction`). Deterministic for a given `seed`.
#[allow(clippy::too_many_arguments)]
pub fn inject_at_inlet(
    set: &mut ParticleSet,
    locator: &Locator,
    inlet_center: Vec3,
    inlet_direction: Vec3,
    inlet_radius: f64,
    initial_speed: f64,
    props: ParticleProps,
    count: usize,
    seed: u64,
) -> usize {
    let mut rng = Rng::new(seed);
    let dir = inlet_direction.normalized();
    let u = dir.any_orthogonal();
    let v = dir.cross(u);
    // Offset slightly inside the mesh so injection points land in
    // elements rather than exactly on the inlet plane.
    let base = inlet_center + dir * (inlet_radius * 0.1);
    let mut injected = 0usize;
    for _ in 0..count {
        // Uniform over the disc (sqrt radial distribution), shrunk to
        // 90 % of the radius to avoid the wall edge.
        let r = inlet_radius * 0.9 * rng.f64().sqrt();
        let a = rng.f64() * std::f64::consts::TAU;
        let p = base + u * (r * a.cos()) + v * (r * a.sin());
        if let Some(e) = locator.locate_global(p) {
            set.push(p, dir * initial_speed, e, props);
            injected += 1;
        }
    }
    injected
}

/// Per-step statistics of the transport sweep.
#[derive(Debug, Default, Clone, Copy)]
pub struct StepStats {
    pub moved: usize,
    pub deposited: usize,
    pub escaped: usize,
    pub lost: usize,
    /// Total element-walk face crossings (a work measure).
    pub walk_steps_estimate: usize,
}

/// Newmark parameters (γ = 1/2, β = 1/4: the unconditionally stable
/// average-acceleration variant; the paper uses Newmark with dt = 1e-4 s).
const NEWMARK_GAMMA: f64 = 0.5;
const NEWMARK_BETA: f64 = 0.25;
/// Fixed-point iterations for the implicit acceleration (drag depends on
/// the end-of-step velocity).
const NEWMARK_PICARD: usize = 3;

/// Advance all active particles of `set` by `dt`.
///
/// `fluid_velocity` is the nodal fluid velocity field; `fluid_density`
/// and `fluid_viscosity` the fluid properties; `gravity` the gravity
/// acceleration vector.
pub fn step_particles(
    set: &mut ParticleSet,
    locator: &Locator,
    fluid_velocity: &[Vec3],
    fluid_density: f64,
    fluid_viscosity: f64,
    gravity: Vec3,
    dt: f64,
) -> StepStats {
    let mut rng = crate::physics::DispersionRng::new(0);
    step_particles_with(
        set,
        locator,
        fluid_velocity,
        fluid_density,
        fluid_viscosity,
        gravity,
        dt,
        &crate::physics::TransportModel::paper_baseline(),
        &mut rng,
    )
}

/// Like [`step_particles`] but with the extended force model
/// ([`crate::physics::TransportModel`]): optional Saffman lift,
/// Brownian motion and turbulent dispersion.
#[allow(clippy::too_many_arguments)]
pub fn step_particles_with(
    set: &mut ParticleSet,
    locator: &Locator,
    fluid_velocity: &[Vec3],
    fluid_density: f64,
    fluid_viscosity: f64,
    gravity: Vec3,
    dt: f64,
    model: &crate::physics::TransportModel,
    rng: &mut crate::physics::DispersionRng,
) -> StepStats {
    let mut stats = StepStats::default();
    for i in 0..set.len() {
        if set.state[i] != ParticleState::Active {
            continue;
        }
        let props = set.props[i];
        let mass = props.mass();
        let e = set.elem[i] as usize;
        let mut uf = locator.interpolate(e, set.pos[i], fluid_velocity);
        if let Some(intensity) = model.turbulence_intensity {
            uf += crate::physics::turbulent_fluctuation(uf, intensity, rng.gaussian3());
        }

        // Newmark-β with a *semi-implicit* drag solve: the drag force is
        // linear in the end-of-step velocity given the drag coefficient
        // k = (π/8) µ d C_D Re, so v₁ solves
        //   v₁ (1 + dtγk/m) = v₀ + dt(1−γ)a₀ + (dtγ/m)(k u_f + F_body).
        // Only k (a weak function of |u_f − v₁|) is Picard-iterated;
        // this stays stable for dt far beyond the particle relaxation
        // time τ = ρ_p d²/(18µ), where a naive explicit update diverges.
        let (x0, v0, a0) = (set.pos[i], set.vel[i], set.acc[i]);
        let mut f_body = crate::forces::gravity_force(props, gravity)
            + crate::forces::buoyancy_force(props, fluid_density, gravity);
        if model.saffman_lift {
            let omega = locator.vorticity(e, fluid_velocity);
            f_body +=
                crate::physics::saffman_lift(fluid_density, fluid_viscosity, props, uf - v0, omega);
        }
        if let Some(temperature) = model.brownian_temperature {
            f_body += crate::physics::brownian_force(
                fluid_density,
                fluid_viscosity,
                props,
                temperature,
                dt,
                rng.gaussian3(),
            );
        }
        let mut v1 = v0;
        let mut k = 0.0;
        for _ in 0..NEWMARK_PICARD {
            let rel_speed = (uf - v1).norm();
            let re = crate::forces::particle_reynolds(
                fluid_density,
                fluid_viscosity,
                props.diameter,
                rel_speed,
            );
            k = std::f64::consts::PI / 8.0
                * fluid_viscosity
                * props.diameter
                * crate::forces::ganser_cd(re)
                * re;
            let c = dt * NEWMARK_GAMMA / mass;
            v1 = (v0 + a0 * (dt * (1.0 - NEWMARK_GAMMA)) + (uf * k + f_body) * c)
                / (1.0 + c * k);
        }
        let a1 = ((uf - v1) * k + f_body) / mass;
        let x1 = x0 + v0 * dt + (a0 * (0.5 - NEWMARK_BETA) + a1 * NEWMARK_BETA) * (dt * dt);
        set.pos[i] = x1;
        set.vel[i] = v1;
        set.acc[i] = a1;
        stats.moved += 1;

        // Relocate.
        match locator.walk(set.elem[i], x1, 256) {
            WalkResult::Inside(ne) => {
                stats.walk_steps_estimate += 1;
                set.elem[i] = ne;
            }
            WalkResult::ExitedBoundary(last, kind) => {
                set.elem[i] = last;
                match kind {
                    BoundaryKind::Wall => {
                        // The walk crossed an exterior face tagged Wall —
                        // but the junction fills of the airway mesh are
                        // star-shaped cones that overlap geometrically
                        // while sharing only the hub node topologically
                        // (DESIGN.md §7), so "through a wall face" can
                        // still be *inside* the overlapping neighbor
                        // region. Only a position no element contains is
                        // a true wall hit.
                        let relocated = locator.locate_global(x1).or_else(|| {
                            // Hop across the thin junction void along the
                            // direction of motion (true wall hits keep
                            // heading outside the mesh and still fail).
                            let speed = v1.norm();
                            if speed > 1e-12 {
                                let h = locator.elem_size(last as usize);
                                locator.locate_forward(x1, v1 / speed, h)
                            } else {
                                None
                            }
                        });
                        match relocated {
                            Some(ne) => set.elem[i] = ne,
                            None => {
                                set.state[i] = ParticleState::Deposited;
                                stats.deposited += 1;
                            }
                        }
                    }
                    BoundaryKind::Outlet | BoundaryKind::Inlet => {
                        set.state[i] = ParticleState::Escaped;
                        stats.escaped += 1;
                    }
                }
            }
            WalkResult::Lost => match locator.locate_global(x1) {
                Some(ne) => set.elem[i] = ne,
                None => {
                    set.state[i] = ParticleState::Lost;
                    stats.lost += 1;
                }
            },
        }
    }
    cfpd_telemetry::count!("particles.steps");
    cfpd_telemetry::count!("particles.advected", stats.moved as u64);
    cfpd_telemetry::count!("particles.deposited", stats.deposited as u64);
    cfpd_telemetry::count!("particles.escaped", stats.escaped as u64);
    stats
}

/// Count active particles per element owner — the per-rank particle load
/// profile that drives the particle-phase imbalance (`elem_owner[e]` is
/// the rank owning element `e`).
pub fn particles_per_owner(set: &ParticleSet, elem_owner: &[u32], num_owners: usize) -> Vec<usize> {
    let mut counts = vec![0usize; num_owners];
    for i in 0..set.len() {
        if set.state[i] == ParticleState::Active {
            counts[elem_owner[set.elem[i] as usize] as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    const AIR_RHO: f64 = 1.14;
    const AIR_MU: f64 = 1.9e-5;

    fn setup() -> (cfpd_mesh::AirwayMesh, ParticleSet) {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        (am, ParticleSet::default())
    }

    #[test]
    fn injection_places_particles_in_elements() {
        let (am, mut set) = setup();
        let loc = Locator::new(&am.mesh);
        let n = inject_at_inlet(
            &mut set,
            &loc,
            am.inlet_center,
            am.inlet_direction,
            am.inlet_radius,
            1.0,
            ParticleProps::default(),
            200,
            42,
        );
        assert!(n >= 190, "only {n}/200 injected");
        assert_eq!(set.census().active, n);
        // All in valid elements near the inlet.
        for i in 0..set.len() {
            assert!((set.elem[i] as usize) < am.mesh.num_elements());
            assert!(set.pos[i].z > -0.02, "injected too deep: {:?}", set.pos[i]);
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let (am, _) = setup();
        let loc = Locator::new(&am.mesh);
        let mut a = ParticleSet::default();
        let mut b = ParticleSet::default();
        let props = ParticleProps::default();
        inject_at_inlet(&mut a, &loc, am.inlet_center, am.inlet_direction, am.inlet_radius, 1.0, props, 50, 7);
        inject_at_inlet(&mut b, &loc, am.inlet_center, am.inlet_direction, am.inlet_radius, 1.0, props, 50, 7);
        assert_eq!(a.pos.len(), b.pos.len());
        for (p, q) in a.pos.iter().zip(&b.pos) {
            assert_eq!(p, q);
        }
    }

    #[test]
    fn injection_concentrates_in_few_elements() {
        // The cause of the paper's particle imbalance: at injection all
        // particles sit in a tiny fraction of the mesh.
        let (am, mut set) = setup();
        let loc = Locator::new(&am.mesh);
        inject_at_inlet(
            &mut set,
            &loc,
            am.inlet_center,
            am.inlet_direction,
            am.inlet_radius,
            1.0,
            ParticleProps::default(),
            300,
            1,
        );
        let distinct: std::collections::HashSet<u32> = set.elem.iter().copied().collect();
        assert!(
            distinct.len() * 20 < am.mesh.num_elements(),
            "{} elements host all particles (of {})",
            distinct.len(),
            am.mesh.num_elements()
        );
    }

    #[test]
    fn particles_follow_downward_flow() {
        let (am, mut set) = setup();
        let loc = Locator::new(&am.mesh);
        inject_at_inlet(
            &mut set,
            &loc,
            am.inlet_center,
            am.inlet_direction,
            am.inlet_radius,
            0.5,
            ParticleProps::default(),
            100,
            3,
        );
        // Uniform downward flow (rapid inhalation along -z).
        let flow = vec![Vec3::new(0.0, 0.0, -2.0); am.mesh.num_nodes()];
        let g = Vec3::new(0.0, 0.0, -9.81);
        let z_before: f64 = set.pos.iter().map(|p| p.z).sum::<f64>() / set.len() as f64;
        for _ in 0..100 {
            step_particles(&mut set, &loc, &flow, AIR_RHO, AIR_MU, g, 1e-4);
        }
        let z_after: f64 = set.pos.iter().map(|p| p.z).sum::<f64>() / set.len() as f64;
        assert!(z_after < z_before, "particles must move down: {z_before} -> {z_after}");
        let c = set.census();
        assert_eq!(c.active + c.deposited + c.escaped + c.lost, set.len());
        assert_eq!(c.lost, 0, "no particle should be lost in a clean tube");
    }

    #[test]
    fn crossflow_deposits_particles_on_walls() {
        let (am, mut set) = setup();
        let loc = Locator::new(&am.mesh);
        inject_at_inlet(
            &mut set,
            &loc,
            am.inlet_center,
            am.inlet_direction,
            am.inlet_radius,
            0.1,
            // Large, heavy particles in a strong sideways flow deposit fast.
            ParticleProps { diameter: 50e-6, density: 2000.0 },
            100,
            9,
        );
        let flow = vec![Vec3::new(3.0, 0.0, -0.2); am.mesh.num_nodes()];
        let g = Vec3::new(0.0, 0.0, -9.81);
        for _ in 0..200 {
            step_particles(&mut set, &loc, &flow, AIR_RHO, AIR_MU, g, 1e-3);
        }
        let c = set.census();
        assert!(c.deposited > 50, "crossflow should deposit most particles: {c:?}");
    }

    #[test]
    fn particles_per_owner_counts() {
        let (am, mut set) = setup();
        let loc = Locator::new(&am.mesh);
        inject_at_inlet(
            &mut set,
            &loc,
            am.inlet_center,
            am.inlet_direction,
            am.inlet_radius,
            1.0,
            ParticleProps::default(),
            100,
            5,
        );
        // Two owners: split elements in half.
        let half = am.mesh.num_elements() / 2;
        let owner: Vec<u32> = (0..am.mesh.num_elements())
            .map(|e| if e < half { 0 } else { 1 })
            .collect();
        let counts = particles_per_owner(&set, &owner, 2);
        assert_eq!(counts.iter().sum::<usize>(), set.census().active);
    }

    #[test]
    fn still_fluid_settling_matches_terminal_velocity() {
        // One particle in still air inside the trachea settles at the
        // Stokes terminal velocity (integration + forces together).
        let (am, mut set) = setup();
        let loc = Locator::new(&am.mesh);
        let props = ParticleProps::default();
        let start = am.inlet_center + am.inlet_direction * 0.02;
        let e = loc.locate_global(start).expect("start inside trachea");
        set.push(start, Vec3::ZERO, e, props);
        let flow = vec![Vec3::ZERO; am.mesh.num_nodes()];
        let g = Vec3::new(0.0, 0.0, -9.81);
        for _ in 0..400 {
            step_particles(&mut set, &loc, &flow, AIR_RHO, AIR_MU, g, 1e-4);
            if set.state[0] != ParticleState::Active {
                break;
            }
        }
        let vt = crate::forces::stokes_terminal_velocity(props, AIR_RHO, AIR_MU, 9.81);
        assert!(
            (set.vel[0].z.abs() - vt).abs() / vt < 0.05,
            "settling velocity {} vs analytic {}",
            set.vel[0].z.abs(),
            vt
        );
    }
}
