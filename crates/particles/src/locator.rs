//! Locating particles in the unstructured hybrid mesh: a face-plane
//! containment test, a neighbor-walk search, and a uniform-grid global
//! fallback for injection and lost particles.

use cfpd_mesh::{BoundaryKind, FaceNeighbors, Mesh, Vec3};
use std::collections::HashMap;

/// Result of a walk from one element toward a point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalkResult {
    /// Point is inside this element.
    Inside(u32),
    /// Walk left the mesh through an exterior face of this element with
    /// this boundary kind (deposition on walls, escape at outlets).
    ExitedBoundary(u32, BoundaryKind),
    /// Walk did not converge (pathological geometry); caller should fall
    /// back to a global search.
    Lost,
}

/// Mesh locator: precomputed face neighbors, boundary classification and
/// a uniform grid over element centroids for global lookups.
pub struct Locator<'m> {
    mesh: &'m Mesh,
    face_neighbors: FaceNeighbors,
    boundary: HashMap<(u32, u8), BoundaryKind>,
    // Uniform grid acceleration structure.
    grid_origin: Vec3,
    grid_cell: f64,
    grid_dims: [usize; 3],
    cells: Vec<Vec<u32>>,
}

impl<'m> Locator<'m> {
    pub fn new(mesh: &'m Mesh) -> Locator<'m> {
        let face_neighbors = mesh.face_neighbors();
        let boundary = mesh.boundary_map();
        // Bounding box of all nodes.
        let mut lo = Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut hi = Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &mesh.coords {
            lo = Vec3::new(lo.x.min(p.x), lo.y.min(p.y), lo.z.min(p.z));
            hi = Vec3::new(hi.x.max(p.x), hi.y.max(p.y), hi.z.max(p.z));
        }
        let ne = mesh.num_elements().max(1);
        // Aim for ~2 elements per cell.
        let target_cells = (ne as f64 / 2.0).max(1.0);
        let extent = hi - lo;
        let vol = (extent.x * extent.y * extent.z).max(1e-30);
        let cell = (vol / target_cells).cbrt().max(1e-9);
        let dims = [
            ((extent.x / cell).ceil() as usize).max(1),
            ((extent.y / cell).ceil() as usize).max(1),
            ((extent.z / cell).ceil() as usize).max(1),
        ];
        let mut cells = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
        let index = |p: Vec3| -> usize {
            let ix = (((p.x - lo.x) / cell) as usize).min(dims[0] - 1);
            let iy = (((p.y - lo.y) / cell) as usize).min(dims[1] - 1);
            let iz = (((p.z - lo.z) / cell) as usize).min(dims[2] - 1);
            (iz * dims[1] + iy) * dims[0] + ix
        };
        for e in 0..mesh.num_elements() {
            cells[index(mesh.centroid(e))].push(e as u32);
        }
        Locator {
            mesh,
            face_neighbors,
            boundary,
            grid_origin: lo,
            grid_cell: cell,
            grid_dims: dims,
            cells,
        }
    }

    /// Face-plane containment test: `p` is inside a convex element if it
    /// lies on the inner side of every face plane (planes through the
    /// face centroid with outward normal; tolerance `eps` relative to
    /// the element size).
    pub fn contains(&self, e: usize, p: Vec3, eps: f64) -> bool {
        self.max_face_violation(e, p) <= eps
    }

    /// Largest signed distance of `p` beyond any face plane of `e`
    /// (negative = strictly inside) and the face index achieving it.
    fn worst_face(&self, e: usize, p: Vec3) -> (f64, usize) {
        let nodes = self.mesh.elem_nodes(e);
        let kind = self.mesh.kinds[e];
        let mut worst = (f64::NEG_INFINITY, 0usize);
        for (f, face) in kind.faces().iter().enumerate() {
            // Face centroid and normal (Newell's method handles warped quads).
            let mut c = Vec3::ZERO;
            for &li in face.iter() {
                c += self.mesh.coords[nodes[li] as usize];
            }
            c = c / face.len() as f64;
            let mut n = Vec3::ZERO;
            for k in 0..face.len() {
                let a = self.mesh.coords[nodes[face[k]] as usize];
                let b = self.mesh.coords[nodes[face[(k + 1) % face.len()]] as usize];
                n += (a - c).cross(b - c);
            }
            let len = n.norm();
            if len < 1e-30 {
                continue;
            }
            let d = (p - c).dot(n / len);
            if d > worst.0 {
                worst = (d, f);
            }
        }
        worst
    }

    fn max_face_violation(&self, e: usize, p: Vec3) -> f64 {
        self.worst_face(e, p).0
    }

    /// Walk from `start` toward `p`, crossing at most `max_steps` faces.
    pub fn walk(&self, start: u32, p: Vec3, max_steps: usize) -> WalkResult {
        let mut e = start as usize;
        let mut prev = usize::MAX;
        for _ in 0..max_steps {
            let (violation, face) = self.worst_face(e, p);
            let h = self.mesh.volume(e).abs().cbrt();
            if violation <= 1e-9 * h.max(1e-30) + 1e-15 {
                return WalkResult::Inside(e as u32);
            }
            match self.face_neighbors.neighbor(e, face) {
                Some(next) => {
                    if next as usize == prev {
                        // Ping-pong between two elements (point near a
                        // warped shared face): accept the closer one.
                        let va = self.max_face_violation(e, p);
                        let vb = self.max_face_violation(prev, p);
                        let best = if va <= vb { e } else { prev };
                        return WalkResult::Inside(best as u32);
                    }
                    prev = e;
                    e = next as usize;
                }
                None => {
                    let kind = self
                        .boundary
                        .get(&(e as u32, face as u8))
                        .copied()
                        .unwrap_or(BoundaryKind::Wall);
                    return WalkResult::ExitedBoundary(e as u32, kind);
                }
            }
        }
        WalkResult::Lost
    }

    /// The mesh this locator indexes.
    pub fn mesh(&self) -> &Mesh {
        self.mesh
    }

    /// Characteristic size (volume cube root) of element `e`.
    pub fn elem_size(&self, e: usize) -> f64 {
        self.mesh.volume(e).abs().cbrt()
    }

    /// Probe forward from `p` along unit direction `dir` in steps of
    /// `h/2` up to `2h`, returning the first element containing a probe
    /// point. Used to hop across the thin uncovered voids between the
    /// star-filled junction cones of the airway mesh (see tracker docs).
    pub fn locate_forward(&self, p: Vec3, dir: Vec3, h: f64) -> Option<u32> {
        for k in 1..=4 {
            let probe = p + dir * (0.5 * h * k as f64);
            if let Some(e) = self.locate_global(probe) {
                return Some(e);
            }
        }
        None
    }

    /// Global search via the uniform grid (used at injection and to
    /// recover lost particles). Returns the containing element, if any.
    pub fn locate_global(&self, p: Vec3) -> Option<u32> {
        // Search the cell of p and its neighbors, nearest-centroid first,
        // then walk from the best candidate.
        let d = self.grid_dims;
        let ix = (((p.x - self.grid_origin.x) / self.grid_cell) as i64).clamp(0, d[0] as i64 - 1);
        let iy = (((p.y - self.grid_origin.y) / self.grid_cell) as i64).clamp(0, d[1] as i64 - 1);
        let iz = (((p.z - self.grid_origin.z) / self.grid_cell) as i64).clamp(0, d[2] as i64 - 1);
        let mut best: Option<(f64, u32)> = None;
        for dz in -1..=1i64 {
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    let (x, y, z) = (ix + dx, iy + dy, iz + dz);
                    if x < 0 || y < 0 || z < 0
                        || x >= d[0] as i64 || y >= d[1] as i64 || z >= d[2] as i64
                    {
                        continue;
                    }
                    let cell = &self.cells[((z as usize) * d[1] + y as usize) * d[0] + x as usize];
                    for &e in cell {
                        let h = self.mesh.volume(e as usize).abs().cbrt();
                        if self.contains(e as usize, p, 1e-9 * h + 1e-15) {
                            return Some(e);
                        }
                        let dist = self.mesh.centroid(e as usize).dist(p);
                        if best.is_none() || dist < best.unwrap().0 {
                            best = Some((dist, e));
                        }
                    }
                }
            }
        }
        // Walk from the nearest candidate centroid.
        if let Some((_, e)) = best {
            if let WalkResult::Inside(found) = self.walk(e, p, 64) {
                return Some(found);
            }
        }
        None
    }

    /// Least-squares linear reconstruction of the gradient of a nodal
    /// vector field over element `e`: returns `G[c]` = ∇(field_c) at the
    /// element (constant per element). Used by the Saffman lift model
    /// (needs the local vorticity) and by diagnostics.
    pub fn gradient(&self, e: usize, field: &[Vec3]) -> [Vec3; 3] {
        let nodes = self.mesh.elem_nodes(e);
        let centroid = self.mesh.centroid(e);
        // Mean field value.
        let mut mean = Vec3::ZERO;
        for &v in nodes {
            mean += field[v as usize];
        }
        mean = mean / nodes.len() as f64;
        // Normal equations A g_c = b_c with A = Σ dx dxᵀ.
        let mut a = [[0.0f64; 3]; 3];
        let mut b = [[0.0f64; 3]; 3]; // b[c][*]
        for &v in nodes {
            let dx = self.mesh.coords[v as usize] - centroid;
            let df = field[v as usize] - mean;
            let dxa = [dx.x, dx.y, dx.z];
            let dfa = [df.x, df.y, df.z];
            for r in 0..3 {
                for c in 0..3 {
                    a[r][c] += dxa[r] * dxa[c];
                }
                for c in 0..3 {
                    b[c][r] += dxa[r] * dfa[c];
                }
            }
        }
        // Invert A (3x3, SPD up to degeneracy; fall back to zero).
        let det = a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1])
            - a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0])
            + a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
        if det.abs() < 1e-30 {
            return [Vec3::ZERO; 3];
        }
        let inv_det = 1.0 / det;
        let inv = [
            [
                (a[1][1] * a[2][2] - a[1][2] * a[2][1]) * inv_det,
                (a[0][2] * a[2][1] - a[0][1] * a[2][2]) * inv_det,
                (a[0][1] * a[1][2] - a[0][2] * a[1][1]) * inv_det,
            ],
            [
                (a[1][2] * a[2][0] - a[1][0] * a[2][2]) * inv_det,
                (a[0][0] * a[2][2] - a[0][2] * a[2][0]) * inv_det,
                (a[0][2] * a[1][0] - a[0][0] * a[1][2]) * inv_det,
            ],
            [
                (a[1][0] * a[2][1] - a[1][1] * a[2][0]) * inv_det,
                (a[0][1] * a[2][0] - a[0][0] * a[2][1]) * inv_det,
                (a[0][0] * a[1][1] - a[0][1] * a[1][0]) * inv_det,
            ],
        ];
        let mut out = [Vec3::ZERO; 3];
        for c in 0..3 {
            out[c] = Vec3::new(
                inv[0][0] * b[c][0] + inv[0][1] * b[c][1] + inv[0][2] * b[c][2],
                inv[1][0] * b[c][0] + inv[1][1] * b[c][1] + inv[1][2] * b[c][2],
                inv[2][0] * b[c][0] + inv[2][1] * b[c][1] + inv[2][2] * b[c][2],
            );
        }
        out
    }

    /// Vorticity ω = ∇ × u of a nodal velocity field at element `e`.
    pub fn vorticity(&self, e: usize, field: &[Vec3]) -> Vec3 {
        let g = self.gradient(e, field);
        // g[c] = grad of component c; ω = (du_z/dy - du_y/dz, ...).
        Vec3::new(g[2].y - g[1].z, g[0].z - g[2].x, g[1].x - g[0].y)
    }

    /// Interpolate a nodal vector field at `p` inside element `e` using
    /// inverse-distance weights over the element nodes (a standard
    /// low-order interpolant for Lagrangian particle tracking).
    pub fn interpolate(&self, e: usize, p: Vec3, field: &[Vec3]) -> Vec3 {
        let nodes = self.mesh.elem_nodes(e);
        let mut wsum = 0.0;
        let mut acc = Vec3::ZERO;
        for &v in nodes {
            let d = self.mesh.coords[v as usize].dist(p);
            if d < 1e-14 {
                return field[v as usize];
            }
            let w = 1.0 / d;
            wsum += w;
            acc += field[v as usize] * w;
        }
        acc / wsum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    fn airway() -> cfpd_mesh::AirwayMesh {
        generate_airway(&AirwaySpec::small()).unwrap()
    }

    #[test]
    fn centroid_is_inside_own_element() {
        let am = airway();
        let loc = Locator::new(&am.mesh);
        for e in (0..am.mesh.num_elements()).step_by(17) {
            let c = am.mesh.centroid(e);
            let h = am.mesh.volume(e).abs().cbrt();
            assert!(loc.contains(e, c, 1e-9 * h), "centroid of {e} not inside");
        }
    }

    #[test]
    fn walk_finds_neighbor_centroid() {
        let am = airway();
        let loc = Locator::new(&am.mesh);
        let fns = am.mesh.face_neighbors();
        let e = 0usize;
        // Find a neighbor and walk to its centroid.
        let nb = fns.faces(e).iter().flatten().next().copied().unwrap() as usize;
        let target = am.mesh.centroid(nb);
        match loc.walk(e as u32, target, 32) {
            WalkResult::Inside(found) => {
                // Must land on an element containing the target.
                let h = am.mesh.volume(found as usize).abs().cbrt();
                assert!(loc.contains(found as usize, target, 1e-6 * h));
            }
            other => panic!("walk failed: {other:?}"),
        }
    }

    #[test]
    fn walk_far_across_the_mesh() {
        let am = airway();
        let loc = Locator::new(&am.mesh);
        // Walk from element 0 to the centroid of the last element.
        let last = am.mesh.num_elements() - 1;
        let target = am.mesh.centroid(last);
        match loc.walk(0, target, 10_000) {
            WalkResult::Inside(found) => {
                let h = am.mesh.volume(found as usize).abs().cbrt();
                assert!(loc.contains(found as usize, target, 1e-6 * h));
            }
            WalkResult::ExitedBoundary(..) => {
                // Acceptable: the straight-line worst-face walk can exit
                // at a junction rim for very distant targets; global
                // relocation handles it.
                let found = loc.locate_global(target);
                assert!(found.is_some());
            }
            WalkResult::Lost => panic!("walk lost"),
        }
    }

    #[test]
    fn outside_point_exits_via_boundary() {
        let am = airway();
        let loc = Locator::new(&am.mesh);
        // A point far outside the mesh in +x.
        let p = Vec3::new(1.0, 0.0, -0.01);
        match loc.walk(0, p, 10_000) {
            WalkResult::ExitedBoundary(_, kind) => {
                assert!(matches!(kind, BoundaryKind::Wall | BoundaryKind::Inlet));
            }
            other => panic!("expected boundary exit, got {other:?}"),
        }
    }

    #[test]
    fn locate_global_finds_centroids() {
        let am = airway();
        let loc = Locator::new(&am.mesh);
        for e in (0..am.mesh.num_elements()).step_by(37) {
            let c = am.mesh.centroid(e);
            let found = loc.locate_global(c).unwrap_or_else(|| panic!("lost centroid of {e}"));
            let h = am.mesh.volume(found as usize).abs().cbrt();
            assert!(loc.contains(found as usize, c, 1e-6 * h));
        }
    }

    #[test]
    fn locate_global_rejects_far_outside() {
        let am = airway();
        let loc = Locator::new(&am.mesh);
        assert_eq!(loc.locate_global(Vec3::new(10.0, 10.0, 10.0)), None);
    }

    #[test]
    fn interpolation_reproduces_constant_field() {
        let am = airway();
        let loc = Locator::new(&am.mesh);
        let field = vec![Vec3::new(3.0, -1.0, 2.0); am.mesh.num_nodes()];
        let p = am.mesh.centroid(5);
        let v = loc.interpolate(5, p, &field);
        assert!((v - Vec3::new(3.0, -1.0, 2.0)).norm() < 1e-12);
    }
}
