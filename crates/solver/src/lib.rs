//! # cfpd-solver — FEM machinery for the incompressible flow solve
//!
//! Implements the numerical phases whose runtime behaviour the paper
//! studies (§2.2, Table 1):
//!
//! * **Matrix assembly** ([`assembly`]) — the racy scatter-add loop over
//!   hybrid elements, parallelized with the paper's three strategies
//!   (atomics / coloring / multidependences, Fig. 4);
//! * **Solver1 / Solver2** ([`krylov`]) — BiCGSTAB for the momentum
//!   system and CG for the pressure (continuity) system of a
//!   fractional-step scheme;
//! * **SGS** ([`sgs`]) — the per-element subgrid-scale sweep with no
//!   global writes (the phase used to isolate scheduling overhead);
//! * [`csr`] — sparse storage with atomic and disjoint concurrent
//!   scatter views; [`shape`] / [`kernels`] — isoparametric elements and
//!   the local integrals.

pub mod assembly;
pub mod csr;
pub mod kernels;
pub mod krylov;
pub mod parallel;
pub mod sgs;
pub mod shape;

pub use assembly::{
    assemble_momentum, assemble_poisson, AssemblyPlan, AssemblyStats, AssemblyStrategy,
};
pub use csr::{AtomicView, CsrMatrix, CsrPattern, DisjointView};
pub use kernels::{ElementScratch, FluidProps};
pub use krylov::{bicgstab, cg, SolveStats};
pub use parallel::cg_parallel;
pub use sgs::{compute_sgs, SgsField, SgsStats};
pub use shape::{map_qp, MappedQp, QuadPoint, RefElement, MAX_NODES, MAX_QP};
