//! # cfpd-solver — FEM machinery for the incompressible flow solve
//!
//! Implements the numerical phases whose runtime behaviour the paper
//! studies (§2.2, Table 1):
//!
//! * **Matrix assembly** ([`assembly`]) — the racy scatter-add loop over
//!   hybrid elements, parallelized with the paper's three strategies
//!   (atomics / coloring / multidependences, Fig. 4);
//! * **Solver1 / Solver2** ([`krylov`]) — BiCGSTAB for the momentum
//!   system and CG for the pressure (continuity) system of a
//!   fractional-step scheme;
//! * **SGS** ([`sgs`]) — the per-element subgrid-scale sweep with no
//!   global writes (the phase used to isolate scheduling overhead);
//! * [`csr`] — sparse storage with atomic and disjoint concurrent
//!   scatter views; [`shape`] / [`kernels`] — isoparametric elements and
//!   the local integrals;
//! * **Locality hot path** ([`layout`] / [`batch`] / fused kernels in
//!   [`parallel`]) — the opt-in `LayoutPlan`: RCM-renumbered meshes,
//!   kind-batched SoA assembly with precomputed gather/scatter lists,
//!   and a fused nnz-balanced deterministic parallel CG.

pub mod assembly;
pub mod batch;
pub mod csr;
pub mod kernels;
pub mod krylov;
pub mod lanes;
pub mod layout;
pub mod matfree;
pub mod parallel;
pub mod sell;
pub mod sgs;
pub mod shape;
pub mod simd;

pub use assembly::{
    assemble_momentum, assemble_poisson, AssemblyPlan, AssemblyStats, AssemblyStrategy,
};
pub use batch::{
    assemble_momentum_batched, assemble_poisson_batched, BatchSchedule, BatchSet, KindBatch,
};
pub use csr::{AtomicView, CsrMatrix, CsrPattern, DisjointView};
pub use kernels::{ElementScratch, FluidProps};
pub use krylov::{bicgstab, cg, cg_with_history, LinearOperator, SolveStats};
pub use lanes::{momentum_kernel_lanes, poisson_kernel_lanes, LaneScratch, LANES};
pub use layout::LayoutPlan;
pub use matfree::MatFreeMomentum;
pub use parallel::{
    axpy_dot_fused, cg_fused, cg_fused_history, cg_fused_sell, cg_parallel, dot_ranges,
    spmv_dot_fused, spmv_sell_parallel_on,
};
pub use sell::{SellMatrix, SELL_C, SELL_SIGMA};
pub use sgs::{compute_sgs, SgsField, SgsStats};
pub use shape::{map_qp, MappedQp, QuadPoint, RefElement, MAX_NODES, MAX_QP};
