//! Eight-lane f64 vector for the SoA kernel hot loops.
//!
//! LLVM's autovectorizer caps AVX-512 codegen at 256 bits on server
//! CPUs (the `prefer-256-bit` tuning default), which halves the
//! throughput of the `[f64; 8]` lane kernels. [`F64x8`] routes the
//! same elementwise operations through explicit 512-bit intrinsics
//! when `avx512f` is enabled at compile time, and through plain
//! per-lane arrays everywhere else (which the compiler vectorizes to
//! whatever width the target has — NEON on the paper's Arm nodes).
//!
//! **Bit-identity contract.** Every operation is a per-lane IEEE-754
//! scalar operation: `+`, `-`, `*`, `/`, `sqrt`, `abs` and mask/select
//! all map to the exact semantics of the corresponding `f64` op, and
//! none of them is ever contracted (no FMA) or reassociated. An
//! expression written with these operators therefore evaluates each
//! lane with the same operation tree as the scalar source it mirrors,
//! producing bit-identical results — pinned by the lane-kernel
//! property tests against the scalar kernels.

use std::ops::{Add, Div, Mul, Sub};

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
use core::arch::x86_64::*;

/// Eight `f64` lanes operated on elementwise.
#[derive(Clone, Copy, Debug)]
pub struct F64x8(Repr);

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
type Repr = __m512d;
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
type Repr = [f64; 8];

/// Per-lane comparison result, used to select between two vectors.
#[derive(Clone, Copy, Debug)]
pub struct Mask8(MaskRepr);

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
type MaskRepr = __mmask8;
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
type MaskRepr = [bool; 8];

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
mod imp {
    use super::*;

    impl F64x8 {
        #[inline(always)]
        pub fn load(a: &[f64; 8]) -> F64x8 {
            // SAFETY: avx512f is statically enabled in this cfg.
            F64x8(unsafe { _mm512_loadu_pd(a.as_ptr()) })
        }
        #[inline(always)]
        pub fn store(self, a: &mut [f64; 8]) {
            // SAFETY: as above; `a` holds exactly 8 lanes.
            unsafe { _mm512_storeu_pd(a.as_mut_ptr(), self.0) }
        }
        #[inline(always)]
        pub fn splat(v: f64) -> F64x8 {
            F64x8(unsafe { _mm512_set1_pd(v) })
        }
        #[inline(always)]
        pub fn zero() -> F64x8 {
            F64x8(unsafe { _mm512_setzero_pd() })
        }
        #[inline(always)]
        pub fn sqrt(self) -> F64x8 {
            F64x8(unsafe { _mm512_sqrt_pd(self.0) })
        }
        /// Per-lane `f64::abs` (sign-bit clear, like the scalar op).
        #[inline(always)]
        pub fn abs(self) -> F64x8 {
            F64x8(unsafe { _mm512_abs_pd(self.0) })
        }
        /// Per-lane `self > rhs` (ordered, quiet — Rust's `>`).
        #[inline(always)]
        pub fn gt(self, rhs: F64x8) -> Mask8 {
            Mask8(unsafe { _mm512_cmp_pd_mask::<_CMP_GT_OQ>(self.0, rhs.0) })
        }
        /// Per-lane `self < rhs` (ordered, quiet — Rust's `<`).
        #[inline(always)]
        pub fn lt(self, rhs: F64x8) -> Mask8 {
            Mask8(unsafe { _mm512_cmp_pd_mask::<_CMP_LT_OQ>(self.0, rhs.0) })
        }
        #[inline(always)]
        pub fn to_array(self) -> [f64; 8] {
            let mut out = [0.0; 8];
            self.store(&mut out);
            out
        }
    }

    impl Mask8 {
        /// Lane-wise `if mask { t } else { f }`.
        #[inline(always)]
        pub fn select(self, t: F64x8, f: F64x8) -> F64x8 {
            F64x8(unsafe { _mm512_mask_blend_pd(self.0, f.0, t.0) })
        }
        #[inline(always)]
        pub fn any(self) -> bool {
            self.0 != 0
        }
    }

    macro_rules! op {
        ($trait:ident, $fn:ident, $intr:ident) => {
            impl $trait for F64x8 {
                type Output = F64x8;
                #[inline(always)]
                fn $fn(self, rhs: F64x8) -> F64x8 {
                    F64x8(unsafe { $intr(self.0, rhs.0) })
                }
            }
        };
    }
    op!(Add, add, _mm512_add_pd);
    op!(Sub, sub, _mm512_sub_pd);
    op!(Mul, mul, _mm512_mul_pd);
    op!(Div, div, _mm512_div_pd);
}

#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
mod imp {
    use super::*;

    impl F64x8 {
        #[inline(always)]
        pub fn load(a: &[f64; 8]) -> F64x8 {
            F64x8(*a)
        }
        #[inline(always)]
        pub fn store(self, a: &mut [f64; 8]) {
            *a = self.0;
        }
        #[inline(always)]
        pub fn splat(v: f64) -> F64x8 {
            F64x8([v; 8])
        }
        #[inline(always)]
        pub fn zero() -> F64x8 {
            F64x8([0.0; 8])
        }
        #[inline(always)]
        pub fn sqrt(self) -> F64x8 {
            F64x8(std::array::from_fn(|l| self.0[l].sqrt()))
        }
        /// Per-lane `f64::abs` (sign-bit clear, like the scalar op).
        #[inline(always)]
        pub fn abs(self) -> F64x8 {
            F64x8(std::array::from_fn(|l| self.0[l].abs()))
        }
        /// Per-lane `self > rhs` (ordered, quiet — Rust's `>`).
        #[inline(always)]
        pub fn gt(self, rhs: F64x8) -> Mask8 {
            Mask8(std::array::from_fn(|l| self.0[l] > rhs.0[l]))
        }
        /// Per-lane `self < rhs` (ordered, quiet — Rust's `<`).
        #[inline(always)]
        pub fn lt(self, rhs: F64x8) -> Mask8 {
            Mask8(std::array::from_fn(|l| self.0[l] < rhs.0[l]))
        }
        #[inline(always)]
        pub fn to_array(self) -> [f64; 8] {
            self.0
        }
    }

    impl Mask8 {
        /// Lane-wise `if mask { t } else { f }`.
        #[inline(always)]
        pub fn select(self, t: F64x8, f: F64x8) -> F64x8 {
            F64x8(std::array::from_fn(|l| if self.0[l] { t.0[l] } else { f.0[l] }))
        }
        #[inline(always)]
        pub fn any(self) -> bool {
            self.0.iter().any(|&b| b)
        }
    }

    macro_rules! op {
        ($trait:ident, $fn:ident, $op:tt) => {
            impl $trait for F64x8 {
                type Output = F64x8;
                #[inline(always)]
                fn $fn(self, rhs: F64x8) -> F64x8 {
                    F64x8(std::array::from_fn(|l| self.0[l] $op rhs.0[l]))
                }
            }
        };
    }
    op!(Add, add, +);
    op!(Sub, sub, -);
    op!(Mul, mul, *);
    op!(Div, div, /);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_testkit::rng::Rng;

    #[test]
    fn elementwise_ops_match_scalar_bits() {
        let mut rng = Rng::new(0xf64_8);
        for _ in 0..200 {
            let a: [f64; 8] = std::array::from_fn(|_| match rng.range_usize(0, 6) {
                0 => 0.0,
                1 => -0.0,
                _ => rng.range_f64(-1e3, 1e3),
            });
            let b: [f64; 8] = std::array::from_fn(|_| rng.range_f64(-1e3, 1e3));
            let (va, vb) = (F64x8::load(&a), F64x8::load(&b));
            for l in 0..8 {
                assert_eq!((va + vb).to_array()[l].to_bits(), (a[l] + b[l]).to_bits());
                assert_eq!((va - vb).to_array()[l].to_bits(), (a[l] - b[l]).to_bits());
                assert_eq!((va * vb).to_array()[l].to_bits(), (a[l] * b[l]).to_bits());
                assert_eq!((va / vb).to_array()[l].to_bits(), (a[l] / b[l]).to_bits());
                assert_eq!(va.abs().to_array()[l].to_bits(), a[l].abs().to_bits());
                assert_eq!(
                    va.abs().sqrt().to_array()[l].to_bits(),
                    a[l].abs().sqrt().to_bits()
                );
            }
            let m = va.gt(vb);
            let sel = m.select(va, vb);
            for l in 0..8 {
                let want = if a[l] > b[l] { a[l] } else { b[l] };
                assert_eq!(sel.to_array()[l].to_bits(), want.to_bits());
            }
            assert_eq!(m.any(), (0..8).any(|l| a[l] > b[l]));
        }
    }
}
