//! Lane-SoA element kernels: the wide-SIMD assembly path.
//!
//! The batched assembly loop is still *scalar over elements*: one
//! element's quadrature kernel runs to completion before the next
//! starts, so the vector units only see the short `NN`-length inner
//! loops. This module restructures the hot kernels to evaluate
//! [`LANES`] same-kind elements at once over structure-of-lanes arrays
//! (`[f64; LANES]` innermost), giving the compiler clean 8-wide
//! vertical operations — the "OpenACC assembly" restructuring of the
//! Alya exascale paper, in portable Rust.
//!
//! **Bit-identity contract.** For each lane, the floating-point
//! operation sequence is *exactly* the scalar kernel's: same
//! association, same division (no reciprocal tricks), and the
//! data-dependent `speed > 1e-12` branch becomes a per-lane select
//! whose taken arm performs the identical `uc/speed` division. Rust
//! never enables FP contraction or reassociation, so widening the ISA
//! cannot change results: every local matrix/RHS entry is bit-identical
//! to [`crate::kernels::momentum_kernel_n`] /
//! [`crate::kernels::poisson_kernel_n`] — pinned by property tests.

use crate::kernels::FluidProps;
use crate::shape::{QuadPoint, RefElement, MAX_NODES};
use crate::simd::F64x8;
use cfpd_mesh::Vec3;

/// Elements evaluated per kernel call: 8 doubles = one AVX-512 register
/// (two NEON/SVE-128 registers on the paper's Arm target).
pub const LANES: usize = 8;

/// One 8-wide SIMD "register" of per-element values.
pub type Lane = [f64; LANES];

/// Node data of [`LANES`] elements in structure-of-lanes layout.
#[derive(Debug, Clone)]
pub struct LaneScratch {
    /// `coords[node][axis][lane]`.
    pub coords: [[Lane; 3]; MAX_NODES],
    /// `vel[node][axis][lane]`.
    pub vel: [[Lane; 3]; MAX_NODES],
    /// `pres[node][lane]`.
    pub pres: [Lane; MAX_NODES],
    /// Characteristic element length per lane.
    pub h: Lane,
}

impl Default for LaneScratch {
    fn default() -> Self {
        LaneScratch {
            coords: [[[0.0; LANES]; 3]; MAX_NODES],
            vel: [[[0.0; LANES]; 3]; MAX_NODES],
            pres: [[0.0; LANES]; MAX_NODES],
            h: [0.0; LANES],
        }
    }
}

impl LaneScratch {
    /// Gather node data for elements `first..first+LANES` of a batch
    /// (flattened `gather` list, `nn` nodes per element). Reads exactly
    /// the values the scalar per-element gather reads.
    pub fn load(
        &mut self,
        coords: &[Vec3],
        velocity: &[Vec3],
        pressure: Option<&[f64]>,
        gather: &[u32],
        h: &[f64],
        nn: usize,
        first: usize,
    ) {
        for l in 0..LANES {
            let nodes = &gather[(first + l) * nn..(first + l + 1) * nn];
            for (k, &v) in nodes.iter().enumerate() {
                let c = coords[v as usize];
                self.coords[k][0][l] = c.x;
                self.coords[k][1][l] = c.y;
                self.coords[k][2][l] = c.z;
                let u = velocity[v as usize];
                self.vel[k][0][l] = u.x;
                self.vel[k][1][l] = u.y;
                self.vel[k][2][l] = u.z;
                self.pres[k][l] = match pressure {
                    Some(p) => p[v as usize],
                    None => 0.0,
                };
            }
            self.h[l] = h[first + l];
        }
    }
}

/// Local momentum matrices/RHS of [`LANES`] elements (lane-innermost).
#[derive(Debug, Clone)]
pub struct LaneMomentum {
    pub a: [[Lane; MAX_NODES]; MAX_NODES],
    pub b: [[Lane; 3]; MAX_NODES],
}

/// Local Poisson matrices/RHS of [`LANES`] elements.
#[derive(Debug, Clone)]
pub struct LanePoisson {
    pub l: [[Lane; MAX_NODES]; MAX_NODES],
    pub b: [Lane; MAX_NODES],
}

/// Per-lane geometry at one quadrature point: `dvol` and physical
/// gradients (shape values are lane-independent and stay on the
/// [`QuadPoint`]).
struct LaneQp {
    dvol: F64x8,
    grad: [[F64x8; 3]; MAX_NODES],
}

/// [`crate::shape::map_qp`] over [`LANES`] elements. Returns `None` if
/// *any* lane has a non-invertible Jacobian (the assembly path treats
/// that as a mesh error, exactly like the scalar `.expect`).
///
/// Per lane this performs the identical straight-line op sequence of
/// the scalar map: Jacobian accumulation in node order, the same
/// cofactor determinant, the same adjugate-over-det inverse. The
/// [`F64x8`] expressions below mirror the scalar source tree
/// operator-for-operator, so each lane's bits match the scalar map.
fn map_qp_lanes(qp: &QuadPoint, coords: &[[Lane; 3]; MAX_NODES], nn: usize) -> Option<LaneQp> {
    let mut j = [[F64x8::zero(); 3]; 3];
    for i in 0..nn {
        let c = [
            F64x8::load(&coords[i][0]),
            F64x8::load(&coords[i][1]),
            F64x8::load(&coords[i][2]),
        ];
        for r in 0..3 {
            let d = F64x8::splat(qp.dn[i][r]);
            j[r][0] = j[r][0] + d * c[0];
            j[r][1] = j[r][1] + d * c[1];
            j[r][2] = j[r][2] + d * c[2];
        }
    }
    let det = j[0][0] * (j[1][1] * j[2][2] - j[1][2] * j[2][1])
        - j[0][1] * (j[1][0] * j[2][2] - j[1][2] * j[2][0])
        + j[0][2] * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
    if det.abs().lt(F64x8::splat(1e-30)).any() {
        return None;
    }
    let inv_det = F64x8::splat(1.0) / det;
    let inv = [
        [
            (j[1][1] * j[2][2] - j[1][2] * j[2][1]) * inv_det,
            (j[0][2] * j[2][1] - j[0][1] * j[2][2]) * inv_det,
            (j[0][1] * j[1][2] - j[0][2] * j[1][1]) * inv_det,
        ],
        [
            (j[1][2] * j[2][0] - j[1][0] * j[2][2]) * inv_det,
            (j[0][0] * j[2][2] - j[0][2] * j[2][0]) * inv_det,
            (j[0][2] * j[1][0] - j[0][0] * j[1][2]) * inv_det,
        ],
        [
            (j[1][0] * j[2][1] - j[1][1] * j[2][0]) * inv_det,
            (j[0][1] * j[2][0] - j[0][0] * j[2][1]) * inv_det,
            (j[0][0] * j[1][1] - j[0][1] * j[1][0]) * inv_det,
        ],
    ];
    let mut grad = [[F64x8::zero(); 3]; MAX_NODES];
    for i in 0..nn {
        for c in 0..3 {
            grad[i][c] = inv[c][0] * F64x8::splat(qp.dn[i][0])
                + inv[c][1] * F64x8::splat(qp.dn[i][1])
                + inv[c][2] * F64x8::splat(qp.dn[i][2]);
        }
    }
    let dvol = F64x8::splat(qp.weight) * det.abs();
    Some(LaneQp { dvol, grad })
}

/// [`crate::kernels::momentum_kernel_n`] over [`LANES`] elements;
/// bit-identical per lane (see the module docs for the contract).
pub fn momentum_kernel_lanes<const NN: usize>(
    re: &RefElement,
    scratch: &LaneScratch,
    props: FluidProps,
    dt: f64,
    body_force: Vec3,
) -> Option<LaneMomentum> {
    let mut out = LaneMomentum {
        a: [[[0.0; LANES]; MAX_NODES]; MAX_NODES],
        b: [[[0.0; LANES]; 3]; MAX_NODES],
    };
    let rho_dt = props.density / dt;
    let bf = [
        body_force.x * props.density,
        body_force.y * props.density,
        body_force.z * props.density,
    ];
    let v_rho_dt = F64x8::splat(rho_dt);
    for qp in &re.qps {
        let m = map_qp_lanes(qp, &scratch.coords, NN)?;
        // Convecting velocity at the point (node order, like scalar).
        let mut uc = [F64x8::zero(); 3];
        for i in 0..NN {
            let ni = F64x8::splat(qp.n[i]);
            for c in 0..3 {
                uc[c] = uc[c] + F64x8::load(&scratch.vel[i][c]) * ni;
            }
        }
        // speed = uc.norm(); per-lane select of (su_coef, udir). The
        // taken arm divides by the *actual* speed — `uc/speed`, not
        // `uc * (1/speed)` — matching the scalar kernel bit-for-bit.
        // (The untaken lanes' `uc/speed` may be ±inf/NaN; the select
        // discards them, exactly like the scalar untaken branch.)
        let speed = (uc[0] * uc[0] + uc[1] * uc[1] + uc[2] * uc[2]).sqrt();
        let moving = speed.gt(F64x8::splat(1e-12));
        let su_coef = moving.select(
            F64x8::splat(0.5 * props.density) * speed * F64x8::load(&scratch.h),
            F64x8::zero(),
        );
        let udir = [
            moving.select(uc[0] / speed, F64x8::zero()),
            moving.select(uc[1] / speed, F64x8::zero()),
            moving.select(uc[2] / speed, F64x8::zero()),
        ];
        // Pressure gradient at the point. The scalar kernel recomputes
        // this identical sum inside its `i` loop; computing it once per
        // quadrature point yields the same bits.
        let mut gp = [F64x8::zero(); 3];
        for k in 0..NN {
            let pk = F64x8::load(&scratch.pres[k]);
            for c in 0..3 {
                gp[c] = gp[c] + m.grad[k][c] * pk;
            }
        }
        let v_visc = F64x8::splat(props.viscosity);
        for i in 0..NN {
            let ni = qp.n[i];
            let gi = &m.grad[i];
            let gi_s = udir[0] * gi[0] + udir[1] * gi[1] + udir[2] * gi[2];
            let gi_su = su_coef * gi_s;
            for j in 0..NN {
                let gj = &m.grad[j];
                // mass = (ρ/dt)·N_i·N_j is lane-independent.
                let mass = F64x8::splat(rho_dt * ni * qp.n[j]);
                let rni = F64x8::splat(props.density * ni);
                let diff = v_visc * (gi[0] * gj[0] + gi[1] * gj[1] + gi[2] * gj[2]);
                let conv = rni * (uc[0] * gj[0] + uc[1] * gj[1] + uc[2] * gj[2]);
                let gj_s = udir[0] * gj[0] + udir[1] * gj[1] + udir[2] * gj[2];
                let su = gi_su * gj_s;
                let aij = &mut out.a[i][j];
                (F64x8::load(aij) + (mass + diff + conv + su) * m.dvol).store(aij);
            }
            for c in 0..3 {
                let t = F64x8::splat(ni) * m.dvol;
                let bic = &mut out.b[i][c];
                (F64x8::load(bic)
                    + (uc[c] * v_rho_dt + F64x8::splat(bf[c]) - gp[c]) * t)
                    .store(bic);
            }
        }
    }
    Some(out)
}

/// [`crate::kernels::poisson_kernel_n`] over [`LANES`] elements;
/// bit-identical per lane.
pub fn poisson_kernel_lanes<const NN: usize>(
    re: &RefElement,
    scratch: &LaneScratch,
    props: FluidProps,
    dt: f64,
) -> Option<LanePoisson> {
    let mut out =
        LanePoisson { l: [[[0.0; LANES]; MAX_NODES]; MAX_NODES], b: [[0.0; LANES]; MAX_NODES] };
    let rho_dt = props.density / dt;
    let v_rho_dt = F64x8::splat(rho_dt);
    for qp in &re.qps {
        let m = map_qp_lanes(qp, &scratch.coords, NN)?;
        let mut u = [F64x8::zero(); 3];
        for i in 0..NN {
            let ni = F64x8::splat(qp.n[i]);
            for c in 0..3 {
                u[c] = u[c] + F64x8::load(&scratch.vel[i][c]) * ni;
            }
        }
        for i in 0..NN {
            let gi = &m.grad[i];
            for j in 0..NN {
                let gj = &m.grad[j];
                let lij = &mut out.l[i][j];
                (F64x8::load(lij)
                    + (gi[0] * gj[0] + gi[1] * gj[1] + gi[2] * gj[2]) * m.dvol)
                    .store(lij);
            }
            let bi = &mut out.b[i];
            (F64x8::load(bi)
                + v_rho_dt * (gi[0] * u[0] + gi[1] * u[1] + gi[2] * u[2]) * m.dvol)
                .store(bi);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{momentum_kernel_n, poisson_kernel_n, ElementScratch};
    use cfpd_testkit::prop::{self, PropConfig};
    use cfpd_testkit::rng::Rng;

    /// Random well-shaped tet: unit reference tet jittered per node.
    fn random_tet(rng: &mut Rng) -> [Vec3; 4] {
        let base = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        base.map(|p| {
            p + Vec3::new(
                rng.range_f64(-0.2, 0.2),
                rng.range_f64(-0.2, 0.2),
                rng.range_f64(-0.2, 0.2),
            )
        })
    }

    /// Fill lane `l` of the lane scratch and a matching scalar scratch.
    fn fill_lane(
        rng: &mut Rng,
        lanes: &mut LaneScratch,
        l: usize,
        still: bool,
    ) -> (ElementScratch, f64) {
        let coords = random_tet(rng);
        let mut scalar = ElementScratch::default();
        for (k, &c) in coords.iter().enumerate() {
            // A few lanes get exactly-zero velocity to exercise the
            // `speed > 1e-12` select.
            let v = if still {
                Vec3::ZERO
            } else {
                Vec3::new(
                    rng.range_f64(-3.0, 3.0),
                    rng.range_f64(-3.0, 3.0),
                    rng.range_f64(-3.0, 3.0),
                )
            };
            let p = rng.range_f64(-50.0, 50.0);
            scalar.coords[k] = c;
            scalar.vel[k] = v;
            scalar.pres[k] = p;
            lanes.coords[k][0][l] = c.x;
            lanes.coords[k][1][l] = c.y;
            lanes.coords[k][2][l] = c.z;
            lanes.vel[k][0][l] = v.x;
            lanes.vel[k][1][l] = v.y;
            lanes.vel[k][2][l] = v.z;
            lanes.pres[k][l] = p;
        }
        let h = rng.range_f64(0.05, 0.5);
        lanes.h[l] = h;
        (scalar, h)
    }

    #[test]
    fn prop_momentum_lanes_bit_identical_to_scalar() {
        let refs = RefElement::all();
        prop::check(
            "momentum lane kernel bit-identical per lane",
            PropConfig::cases(40),
            &prop::usize_range(0, 1 << 30),
            |&seed| {
                let mut rng = Rng::new(seed as u64);
                let mut lanes = LaneScratch::default();
                let mut scalars = Vec::new();
                for l in 0..LANES {
                    scalars.push(fill_lane(&mut rng, &mut lanes, l, l % 3 == 0));
                }
                let props = FluidProps::default();
                let dt = 1e-4;
                let bf = Vec3::new(0.0, 0.0, -9.81);
                let re = &refs[0];
                let lm = momentum_kernel_lanes::<4>(re, &lanes, props, dt, bf).unwrap();
                for (l, (scalar, h)) in scalars.iter().enumerate() {
                    let want = momentum_kernel_n::<4>(re, scalar, props, dt, *h, bf).unwrap();
                    for i in 0..4 {
                        for j in 0..4 {
                            assert_eq!(
                                lm.a[i][j][l].to_bits(),
                                want.a[i][j].to_bits(),
                                "lane {l} a[{i}][{j}]: {} vs {}",
                                lm.a[i][j][l],
                                want.a[i][j]
                            );
                        }
                        for c in 0..3 {
                            assert_eq!(
                                lm.b[i][c][l].to_bits(),
                                want.b[i][c].to_bits(),
                                "lane {l} b[{i}][{c}]"
                            );
                        }
                    }
                }
            },
        );
    }

    #[test]
    fn prop_poisson_lanes_bit_identical_to_scalar() {
        let refs = RefElement::all();
        prop::check(
            "poisson lane kernel bit-identical per lane",
            PropConfig::cases(40),
            &prop::usize_range(0, 1 << 30),
            |&seed| {
                let mut rng = Rng::new(seed as u64);
                let mut lanes = LaneScratch::default();
                let mut scalars = Vec::new();
                for l in 0..LANES {
                    scalars.push(fill_lane(&mut rng, &mut lanes, l, l % 4 == 0));
                }
                let props = FluidProps::default();
                let dt = 1e-4;
                let re = &refs[0];
                let lp = poisson_kernel_lanes::<4>(re, &lanes, props, dt).unwrap();
                for (l, (scalar, _)) in scalars.iter().enumerate() {
                    let want = poisson_kernel_n::<4>(re, scalar, props, dt).unwrap();
                    for i in 0..4 {
                        for j in 0..4 {
                            assert_eq!(
                                lp.l[i][j][l].to_bits(),
                                want.l[i][j].to_bits(),
                                "lane {l} l[{i}][{j}]"
                            );
                        }
                        assert_eq!(lp.b[i][l].to_bits(), want.b[i].to_bits(), "lane {l} b[{i}]");
                    }
                }
            },
        );
    }
}
