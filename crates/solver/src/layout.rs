//! The opt-in locality layout plan.
//!
//! Independent switches form the locality-aware hot path: RCM node
//! reordering (applied to the mesh before solvers are built),
//! kind-batched SoA assembly, fused/nnz-balanced solver kernels,
//! SELL-shaped SpMV, lane-SIMD element kernels, and kind-batched SGS
//! sweeps. The default is **everything off**, and the default path's
//! golden trace (`tests/golden/sync_small.golden`) must stay
//! byte-identical whether or not this code is compiled in. The
//! fully-enabled plan is pinned by its own golden
//! (`tests/golden/sync_small_opt.golden`); every switch is individually
//! bit-identical, so the opt golden needs no rebless when one flips.

/// Which locality optimizations a run enables. `Default` is all-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayoutPlan {
    /// Renumber mesh nodes with reverse Cuthill–McKee before building
    /// matrices (shrinks CSR bandwidth → better SpMV/assembly locality).
    pub rcm: bool,
    /// Group each parallel unit's elements by `ElementKind` into SoA
    /// batches with precomputed gather/scatter index lists.
    pub batched_assembly: bool,
    /// Use the fused, nnz-balanced, deterministic parallel CG for the
    /// pressure solve instead of the serial reference CG.
    pub fused_solver: bool,
    /// Route the pressure-CG SpMV through a SELL-C-σ copy of the matrix
    /// (8 independent accumulator chains per chunk hide FP-add latency;
    /// bit-identical per row to the CSR SpMV).
    pub sell_spmv: bool,
    /// Evaluate element kernels 8 elements at a time over lane-SoA
    /// scratch (per-lane op sequence identical to the scalar kernels, so
    /// every local matrix entry carries identical bits).
    pub lane_kernels: bool,
    /// Run the SGS sweep over cached per-kind element batches instead of
    /// re-gathering per element each sweep.
    pub batched_sgs: bool,
    /// Solve the momentum system matrix-free: keep per-element local
    /// matrices and apply them row-wise on the fly instead of scattering
    /// into a global CSR (0 ULP vs the assembled apply). Opt-in via
    /// `CFPD_LAYOUT=opt-matfree`; not part of [`LayoutPlan::optimized`].
    pub matrix_free: bool,
}

impl LayoutPlan {
    /// The default path: no layout optimization anywhere.
    pub fn disabled() -> LayoutPlan {
        LayoutPlan::default()
    }

    /// All always-faster locality optimizations on (`matrix_free` stays
    /// off: it trades apply speed for skipping matrix materialisation,
    /// which is a workload-dependent win).
    pub fn optimized() -> LayoutPlan {
        LayoutPlan {
            rcm: true,
            batched_assembly: true,
            fused_solver: true,
            sell_spmv: true,
            lane_kernels: true,
            batched_sgs: true,
            matrix_free: false,
        }
    }

    /// Resolve from the `CFPD_LAYOUT` environment variable: `opt`
    /// enables the standard optimized plan, `opt-matfree` additionally
    /// solves the momentum system matrix-free, anything else (or unset)
    /// is the default.
    pub fn from_env() -> LayoutPlan {
        match std::env::var("CFPD_LAYOUT").as_deref() {
            Ok("opt") => LayoutPlan::optimized(),
            Ok("opt-matfree") => LayoutPlan { matrix_free: true, ..LayoutPlan::optimized() },
            _ => LayoutPlan::disabled(),
        }
    }

    /// True when no optimization is enabled (the bit-identity path).
    pub fn is_default(&self) -> bool {
        *self == LayoutPlan::disabled()
    }

    /// Short label for trace headers and bench rows.
    pub fn label(&self) -> &'static str {
        if self.is_default() {
            "default"
        } else {
            "opt"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        assert!(LayoutPlan::default().is_default());
        assert_eq!(LayoutPlan::default(), LayoutPlan::disabled());
        assert_eq!(LayoutPlan::disabled().label(), "default");
    }

    #[test]
    fn optimized_enables_everything() {
        let l = LayoutPlan::optimized();
        assert!(l.rcm && l.batched_assembly && l.fused_solver);
        assert!(l.sell_spmv && l.lane_kernels && l.batched_sgs);
        assert!(!l.matrix_free, "matrix-free is opt-in, not part of `opt`");
        assert!(!l.is_default());
        assert_eq!(l.label(), "opt");
    }
}
