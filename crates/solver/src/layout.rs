//! The opt-in locality layout plan.
//!
//! Three independent switches form the locality-aware hot path:
//! RCM node reordering (applied to the mesh before solvers are built),
//! kind-batched SoA assembly, and fused/nnz-balanced solver kernels.
//! The default is **everything off**, and the default path's golden
//! trace (`tests/golden/sync_small.golden`) must stay byte-identical
//! whether or not this code is compiled in. The fully-enabled plan is
//! pinned by its own golden (`tests/golden/sync_small_opt.golden`).

/// Which locality optimizations a run enables. `Default` is all-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayoutPlan {
    /// Renumber mesh nodes with reverse Cuthill–McKee before building
    /// matrices (shrinks CSR bandwidth → better SpMV/assembly locality).
    pub rcm: bool,
    /// Group each parallel unit's elements by `ElementKind` into SoA
    /// batches with precomputed gather/scatter index lists.
    pub batched_assembly: bool,
    /// Use the fused, nnz-balanced, deterministic parallel CG for the
    /// pressure solve instead of the serial reference CG.
    pub fused_solver: bool,
}

impl LayoutPlan {
    /// The default path: no layout optimization anywhere.
    pub fn disabled() -> LayoutPlan {
        LayoutPlan::default()
    }

    /// All locality optimizations on.
    pub fn optimized() -> LayoutPlan {
        LayoutPlan { rcm: true, batched_assembly: true, fused_solver: true }
    }

    /// Resolve from the `CFPD_LAYOUT` environment variable: `opt`
    /// enables everything, anything else (or unset) is the default.
    pub fn from_env() -> LayoutPlan {
        match std::env::var("CFPD_LAYOUT").as_deref() {
            Ok("opt") => LayoutPlan::optimized(),
            _ => LayoutPlan::disabled(),
        }
    }

    /// True when no optimization is enabled (the bit-identity path).
    pub fn is_default(&self) -> bool {
        *self == LayoutPlan::disabled()
    }

    /// Short label for trace headers and bench rows.
    pub fn label(&self) -> &'static str {
        if self.is_default() {
            "default"
        } else {
            "opt"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        assert!(LayoutPlan::default().is_default());
        assert_eq!(LayoutPlan::default(), LayoutPlan::disabled());
        assert_eq!(LayoutPlan::disabled().label(), "default");
    }

    #[test]
    fn optimized_enables_everything() {
        let l = LayoutPlan::optimized();
        assert!(l.rcm && l.batched_assembly && l.fused_solver);
        assert!(!l.is_default());
        assert_eq!(l.label(), "opt");
    }
}
