//! Matrix-free momentum operator: assemble-lite + 0-ULP row-wise apply.
//!
//! The momentum system is rebuilt every time step, so the classical
//! pipeline pays for the full CSR scatter (an `entry_index` search per
//! local-matrix entry) only to read the values back a few hundred times
//! in BiCGSTAB. This module keeps the element integrals in a flat
//! per-element store instead ("assembly-lite": kernels + RHS scatter,
//! no matrix scatter) and applies the operator row by row.
//!
//! **Bit-exactness contract.** `MatFreeMomentum::apply` reproduces the
//! assembled `CsrMatrix::spmv` *to the bit*, provided the reference
//! matrix was assembled serially over the same element list:
//!
//! * per row, incident-element contributions are accumulated into a
//!   per-slot scratch in element-list order — exactly the order the
//!   serial scatter adds them into `values[idx]`;
//! * the row dot then walks the slots in CSR column order, matching the
//!   `acc += values[k] * x[col_idx[k]]` sequence of `spmv`;
//! * Dirichlet rows replay the post-`set_dirichlet_row` 0/1 pattern
//!   (including the `0.0 * x[col]` products, which matter for signed
//!   zeros) rather than short-circuiting to `x[row]`.
//!
//! The operator covers only the elements it was built with, so the
//! matrix-free path is a single-address-space optimization; distributed
//! (replicated-solve) runs keep the assembled momentum matrix.

use cfpd_mesh::{Mesh, Vec3};

use crate::csr::CsrMatrix;
use crate::kernels::{momentum_kernel, ElementScratch, FluidProps};
use crate::krylov::LinearOperator;
use crate::shape::RefElement;

/// Matrix-free momentum operator over a fixed mesh + element list.
///
/// Structure (apply lists, CSR pattern mirror) is built once; values
/// (`local`, the flat per-element matrices) are refilled by
/// [`MatFreeMomentum::assemble`] every time step.
#[derive(Debug)]
pub struct MatFreeMomentum {
    /// Number of rows/columns (mesh nodes).
    pub n: usize,
    /// Element ids in assembly order (the plan's element list).
    elems: Vec<u32>,
    /// Per-element offset into `local` (`nn*nn` entries each).
    elem_off: Vec<u32>,
    /// Flat local matrices, refilled by `assemble`.
    local: Vec<f64>,
    /// CSR pattern mirror: the row dot walks columns in this order.
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    /// Per-row contribution lists, ordered by element position (= serial
    /// assembly order): flat index into `local` and slot within the row.
    apply_ptr: Vec<u32>,
    apply_src: Vec<u32>,
    apply_slot: Vec<u32>,
    /// Slot of the diagonal entry within each row.
    diag_slot: Vec<u32>,
    /// Rows replaced by the identity (boundary conditions).
    dirichlet: Vec<bool>,
    /// Longest row (scratch size for the per-row slot accumulator).
    max_row: usize,
}

impl MatFreeMomentum {
    /// Build the apply structure for `elems` against the sparsity
    /// `pattern` (the momentum matrix the element list would assemble
    /// into). Values are all zero until [`MatFreeMomentum::assemble`].
    pub fn new(mesh: &Mesh, pattern: &CsrMatrix, elems: &[u32]) -> MatFreeMomentum {
        let n = pattern.n;
        // Per-node incidence as positions into `elems`, ordered by
        // position — the serial assembly order seen by each row.
        let mut inc_cnt = vec![0u32; n];
        for &e in elems {
            for &v in mesh.elem_nodes(e as usize) {
                inc_cnt[v as usize] += 1;
            }
        }
        let mut inc_ptr = vec![0u32; n + 1];
        for i in 0..n {
            inc_ptr[i + 1] = inc_ptr[i] + inc_cnt[i];
        }
        let mut inc_pos = vec![0u32; inc_ptr[n] as usize];
        let mut inc_ki = vec![0u8; inc_ptr[n] as usize];
        let mut cursor: Vec<u32> = inc_ptr[..n].to_vec();
        let mut elem_off = Vec::with_capacity(elems.len());
        let mut local_len = 0u32;
        for (pe, &e) in elems.iter().enumerate() {
            elem_off.push(local_len);
            let nodes = mesh.elem_nodes(e as usize);
            local_len += (nodes.len() * nodes.len()) as u32;
            for (ki, &v) in nodes.iter().enumerate() {
                let c = cursor[v as usize];
                inc_pos[c as usize] = pe as u32;
                inc_ki[c as usize] = ki as u8;
                cursor[v as usize] = c + 1;
            }
        }

        let mut apply_ptr = Vec::with_capacity(n + 1);
        let mut apply_src = Vec::new();
        let mut apply_slot = Vec::new();
        let mut diag_slot = vec![0u32; n];
        let mut max_row = 0usize;
        apply_ptr.push(0u32);
        for row in 0..n {
            let lo = pattern.row_ptr[row] as usize;
            let hi = pattern.row_ptr[row + 1] as usize;
            let cols = &pattern.col_idx[lo..hi];
            max_row = max_row.max(cols.len());
            if let Some(s) = cols.iter().position(|&c| c as usize == row) {
                diag_slot[row] = s as u32;
            }
            for k in inc_ptr[row]..inc_ptr[row + 1] {
                let pe = inc_pos[k as usize] as usize;
                let ki = inc_ki[k as usize] as usize;
                let nodes = mesh.elem_nodes(elems[pe] as usize);
                let nn = nodes.len();
                for (kj, &cj) in nodes.iter().enumerate() {
                    let slot = cols
                        .iter()
                        .position(|&c| c == cj)
                        .expect("element column missing from pattern");
                    apply_src.push(elem_off[pe] + (ki * nn + kj) as u32);
                    apply_slot.push(slot as u32);
                }
            }
            apply_ptr.push(apply_src.len() as u32);
        }

        MatFreeMomentum {
            n,
            elems: elems.to_vec(),
            elem_off,
            local: vec![0.0; local_len as usize],
            row_ptr: pattern.row_ptr.clone(),
            col_idx: pattern.col_idx.clone(),
            apply_ptr,
            apply_src,
            apply_slot,
            diag_slot,
            dirichlet: vec![false; n],
            max_row,
        }
    }

    /// Assemble-lite: run the momentum kernels over the element list in
    /// order, storing each local matrix flat (no CSR scatter) and
    /// accumulating the RHS exactly like the serial assembly. Clears
    /// previous Dirichlet markings, mirroring a matrix re-assembly.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        &mut self,
        refs: &[RefElement; 3],
        mesh: &Mesh,
        velocity: &[Vec3],
        pressure: &[f64],
        props: FluidProps,
        dt: f64,
        body_force: Vec3,
        rhs: &mut [Vec<f64>],
    ) {
        self.dirichlet.iter_mut().for_each(|d| *d = false);
        let mut scratch = ElementScratch::default();
        for (pe, &e) in self.elems.iter().enumerate() {
            let e = e as usize;
            let (kind, nn) = scratch.load_with_pressure(mesh, velocity, pressure, e);
            let h = mesh.volume(e).abs().cbrt();
            let lm = momentum_kernel(refs, &scratch, kind, nn, props, dt, h, body_force)
                .expect("degenerate element");
            let base = self.elem_off[pe] as usize;
            for i in 0..nn {
                for j in 0..nn {
                    self.local[base + i * nn + j] = lm.a[i][j];
                }
            }
            let nodes = mesh.elem_nodes(e);
            for i in 0..nn {
                let gi = nodes[i] as usize;
                for (c, r) in rhs.iter_mut().enumerate() {
                    r[gi] += lm.b[i][c];
                }
            }
        }
    }

    /// Replace `row` by the identity row, like
    /// [`CsrMatrix::set_dirichlet_row`].
    pub fn set_dirichlet_row(&mut self, row: usize) {
        self.dirichlet[row] = true;
    }

    /// y = A x, bit-identical to the serially-assembled CSR `spmv`.
    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        cfpd_telemetry::count!("solver.matfree_apply_calls");
        let mut scratch = vec![0.0f64; self.max_row];
        for row in 0..self.n {
            let lo = self.row_ptr[row] as usize;
            let hi = self.row_ptr[row + 1] as usize;
            let cols = &self.col_idx[lo..hi];
            if self.dirichlet[row] {
                // Replay the 0/1 pattern the assembled path dots with.
                let mut acc = 0.0;
                for &c in cols {
                    let v = if c as usize == row { 1.0 } else { 0.0 };
                    acc += v * x[c as usize];
                }
                y[row] = acc;
                continue;
            }
            let s = &mut scratch[..cols.len()];
            s.iter_mut().for_each(|v| *v = 0.0);
            for a in self.apply_ptr[row]..self.apply_ptr[row + 1] {
                s[self.apply_slot[a as usize] as usize] += self.local[self.apply_src[a as usize] as usize];
            }
            let mut acc = 0.0;
            for (k, &c) in cols.iter().enumerate() {
                acc += s[k] * x[c as usize];
            }
            y[row] = acc;
        }
    }

    /// Diagonal entries, bit-identical to the assembled matrix's
    /// `diagonal()` (Dirichlet rows give 1.0).
    pub fn diag(&self) -> Vec<f64> {
        let mut scratch = vec![0.0f64; self.max_row];
        let mut d = vec![0.0; self.n];
        for row in 0..self.n {
            if self.dirichlet[row] {
                d[row] = 1.0;
                continue;
            }
            let lo = self.row_ptr[row] as usize;
            let hi = self.row_ptr[row + 1] as usize;
            let s = &mut scratch[..hi - lo];
            s.iter_mut().for_each(|v| *v = 0.0);
            for a in self.apply_ptr[row]..self.apply_ptr[row + 1] {
                s[self.apply_slot[a as usize] as usize] += self.local[self.apply_src[a as usize] as usize];
            }
            d[row] = s[self.diag_slot[row] as usize];
        }
        d
    }

    /// Total stored local-matrix entries (vs `nnz` of the assembled
    /// matrix — the redundancy factor of the element store).
    pub fn local_len(&self) -> usize {
        self.local.len()
    }
}

impl LinearOperator for MatFreeMomentum {
    fn size(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        MatFreeMomentum::apply(self, x, y)
    }
    fn diagonal(&self) -> Vec<f64> {
        self.diag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::{assemble_momentum, AssemblyPlan, AssemblyStrategy};
    use crate::krylov::bicgstab;
    use cfpd_mesh::{generate_airway, AirwaySpec};
    use cfpd_runtime::ThreadPool;
    use cfpd_testkit::prop::{self, PropConfig};
    use cfpd_testkit::Rng;

    struct Fixture {
        mesh: cfpd_mesh::Mesh,
        refs: [RefElement; 3],
        velocity: Vec<Vec3>,
        assembled: CsrMatrix,
        rhs_csr: Vec<Vec<f64>>,
        mf: MatFreeMomentum,
        rhs_mf: Vec<Vec<f64>>,
    }

    fn fixture() -> Fixture {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let mesh = am.mesh;
        let refs = RefElement::all();
        let n = mesh.num_nodes();
        let velocity: Vec<Vec3> =
            mesh.coords.iter().map(|p| Vec3::new(p.z * 2.0, p.x, -p.y * 0.5)).collect();
        let pressure = vec![0.0; n];
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
        let n2e = mesh.node_to_elements();
        let mut assembled = CsrMatrix::from_mesh(&mesh, &n2e);
        let plan = AssemblyPlan::new(&mesh, elems.clone(), AssemblyStrategy::Serial, 4);
        let pool = ThreadPool::new(1);
        let props = FluidProps::default();
        let dt = 1e-3;
        let gravity = Vec3::new(0.0, 0.0, -9.81);
        let mut rhs_csr = vec![vec![0.0; n]; 3];
        assemble_momentum(
            &pool, &refs, &mesh, &plan, &velocity, &pressure, props, dt, gravity, &mut assembled,
            &mut rhs_csr,
        );
        let mut mf = MatFreeMomentum::new(&mesh, &assembled, &elems);
        let mut rhs_mf = vec![vec![0.0; n]; 3];
        mf.assemble(&refs, &mesh, &velocity, &pressure, props, dt, gravity, &mut rhs_mf);
        Fixture { mesh, refs, velocity, assembled, rhs_csr, mf, rhs_mf }
    }

    fn probe(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let v = rng.range_f64(-3.0, 3.0);
                // Sprinkle signed zeros to exercise the 0.0-product paths.
                if rng.range_usize(0, 16) == 0 {
                    if v < 0.0 {
                        -0.0
                    } else {
                        0.0
                    }
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn matfree_matches_assembled_rhs_and_diagonal() {
        let f = fixture();
        for c in 0..3 {
            for i in 0..f.mesh.num_nodes() {
                assert_eq!(
                    f.rhs_csr[c][i].to_bits(),
                    f.rhs_mf[c][i].to_bits(),
                    "rhs[{c}][{i}]"
                );
            }
        }
        let da = f.assembled.diagonal();
        let dm = f.mf.diag();
        for i in 0..f.mesh.num_nodes() {
            assert_eq!(da[i].to_bits(), dm[i].to_bits(), "diag[{i}]");
        }
    }

    #[test]
    fn prop_matfree_apply_bit_identical_to_assembled_spmv() {
        let mut f = fixture();
        let n = f.mesh.num_nodes();
        // Random Dirichlet rows, applied to both sides identically.
        let mut rng = Rng::new(0x5eed);
        for _ in 0..32 {
            let row = rng.range_usize(0, n);
            f.assembled.set_dirichlet_row(row);
            f.mf.set_dirichlet_row(row);
        }
        let assembled = &f.assembled;
        let mf = &f.mf;
        prop::check(
            "matfree apply bit-identical to assembled spmv",
            PropConfig::cases(25),
            &prop::usize_range(0, 1 << 30),
            |&seed| {
                let x = probe(n, seed as u64);
                let mut ya = vec![0.0; n];
                let mut ym = vec![0.0; n];
                assembled.spmv(&x, &mut ya);
                mf.apply(&x, &mut ym);
                for i in 0..n {
                    assert_eq!(ya[i].to_bits(), ym[i].to_bits(), "row {i} (seed {seed})");
                }
            },
        );
    }

    #[test]
    fn matfree_bicgstab_bit_identical_to_assembled() {
        let mut f = fixture();
        let n = f.mesh.num_nodes();
        // Dirichlet-close the system like the fluid stepper does.
        for row in (0..n).step_by(7) {
            f.assembled.set_dirichlet_row(row);
            f.mf.set_dirichlet_row(row);
            for c in 0..3 {
                f.rhs_csr[c][row] = 0.0;
            }
        }
        for c in 0..3 {
            let x0: Vec<f64> =
                f.velocity.iter().map(|v| [v.x, v.y, v.z][c]).collect();
            let mut xa = x0.clone();
            let mut xm = x0;
            let sa = bicgstab(&f.assembled, &f.rhs_csr[c], &mut xa, 1e-10, 200);
            let sm = bicgstab(&f.mf, &f.rhs_csr[c], &mut xm, 1e-10, 200);
            assert_eq!(sa.iterations, sm.iterations, "component {c}");
            assert_eq!(sa.residual.to_bits(), sm.residual.to_bits(), "component {c}");
            assert!(sa.converged, "component {c}: {sa:?}");
            for i in 0..n {
                assert_eq!(xa[i].to_bits(), xm[i].to_bits(), "x[{i}] component {c}");
            }
        }
    }

    #[test]
    fn reassembly_refreshes_values_and_clears_dirichlet() {
        let mut f = fixture();
        let n = f.mesh.num_nodes();
        f.mf.set_dirichlet_row(3);
        // New velocity field → new operator; re-assemble both sides.
        let velocity: Vec<Vec3> =
            f.mesh.coords.iter().map(|p| Vec3::new(-p.y, p.z, p.x * 0.25)).collect();
        let pressure = vec![0.0; n];
        let elems: Vec<u32> = (0..f.mesh.num_elements() as u32).collect();
        let plan = AssemblyPlan::new(&f.mesh, elems, AssemblyStrategy::Serial, 4);
        let pool = ThreadPool::new(1);
        f.assembled.clear();
        let mut rhs = vec![vec![0.0; n]; 3];
        assemble_momentum(
            &pool,
            &f.refs,
            &f.mesh,
            &plan,
            &velocity,
            &pressure,
            FluidProps::default(),
            1e-3,
            Vec3::new(0.0, 0.0, -9.81),
            &mut f.assembled,
            &mut rhs,
        );
        let mut rhs_mf = vec![vec![0.0; n]; 3];
        f.mf.assemble(
            &f.refs,
            &f.mesh,
            &velocity,
            &pressure,
            FluidProps::default(),
            1e-3,
            Vec3::new(0.0, 0.0, -9.81),
            &mut rhs_mf,
        );
        let x = probe(n, 42);
        let mut ya = vec![0.0; n];
        let mut ym = vec![0.0; n];
        f.assembled.spmv(&x, &mut ya);
        f.mf.apply(&x, &mut ym);
        for i in 0..n {
            assert_eq!(ya[i].to_bits(), ym[i].to_bits(), "row {i} after reassembly");
        }
    }
}
