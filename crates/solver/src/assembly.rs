//! The three parallelizations of the matrix-assembly phase compared in
//! the paper (§3.1, Fig. 4), plus a serial reference:
//!
//! * **Atomics** — `omp parallel do` + `omp atomic` on every scatter-add
//!   (pays the atomic penalty whether or not there is a conflict);
//! * **Coloring** — Farhat-Crivelli: one parallel loop per color, no
//!   atomics, but spatial locality destroyed;
//! * **Multidep** — one task per Metis-style subdomain, adjacent
//!   subdomains linked with `mutexinoutset`: no atomics *and* contiguous
//!   elements processed by the same task (locality preserved).
//!
//! All strategies produce the same matrix up to floating-point
//! summation order (verified by the strategy-equivalence tests).

use crate::csr::{AtomicView, CsrMatrix, DisjointView};
use crate::kernels::{
    momentum_kernel, poisson_kernel, ElementScratch, FluidProps, LocalMomentum, LocalPoisson,
};
use crate::shape::{RefElement, MAX_NODES};
use cfpd_mesh::{Mesh, Vec3};
use cfpd_partition::{decompose_subdomains, greedy_coloring, local_element_graph};
use cfpd_runtime::{parallel_for, Dep, TaskGraph, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which parallelization to use for a racy element loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssemblyStrategy {
    /// Single-threaded reference.
    Serial,
    /// Parallel loop with atomic scatter-adds.
    Atomics,
    /// Mesh coloring: one parallel loop per color, plain scatter.
    Coloring,
    /// Multidependences: subdomain tasks with mutexinoutset exclusion.
    Multidep,
}

impl AssemblyStrategy {
    pub const ALL: [AssemblyStrategy; 4] = [
        AssemblyStrategy::Serial,
        AssemblyStrategy::Atomics,
        AssemblyStrategy::Coloring,
        AssemblyStrategy::Multidep,
    ];

    pub fn label(self) -> &'static str {
        match self {
            AssemblyStrategy::Serial => "Serial",
            AssemblyStrategy::Atomics => "Atomics",
            AssemblyStrategy::Coloring => "Coloring",
            AssemblyStrategy::Multidep => "Multidep",
        }
    }
}

/// Precomputed schedule for assembling a fixed element set with a fixed
/// strategy (built once, reused every time step — as a production code
/// would).
#[derive(Debug)]
pub struct AssemblyPlan {
    pub strategy: AssemblyStrategy,
    /// Elements this plan assembles (global ids).
    pub elems: Vec<u32>,
    /// Coloring schedule: element ids per color.
    color_classes: Option<Vec<Vec<u32>>>,
    /// Multidep schedule: element ids per subdomain + per-subdomain
    /// mutexinoutset object lists (one object per adjacency edge).
    subdomains: Option<(Vec<Vec<u32>>, Vec<Vec<usize>>)>,
    /// Grain for the atomics parallel loop.
    grain: usize,
    /// Kind-batched SoA schedule (opt-in `LayoutPlan`): one batch set
    /// per parallel unit of the strategy.
    batches: Option<crate::batch::BatchSchedule>,
    /// Evaluate batched element kernels [`crate::lanes::LANES`] elements
    /// at a time over lane-SoA scratch (bit-identical per element; see
    /// [`crate::lanes`]). Only consulted by the batched paths.
    pub lane_kernels: bool,
    /// Run SGS sweeps through the kind-batched cached-gather schedule
    /// instead of the per-element strategy loop (bit-identical — SGS
    /// elements are mutually independent).
    pub batched_sgs: bool,
}

/// Counters describing one assembly execution, consumed by the
/// performance model (atomic ops, locality, task scheduling).
#[derive(Debug, Default, Clone)]
pub struct AssemblyStats {
    pub elements: usize,
    /// Quadrature-weighted element work (Tet4 ≡ 1).
    pub weighted_ops: f64,
    /// Atomic read-modify-writes issued (Atomics strategy only).
    pub atomic_adds: usize,
    /// Number of colors (Coloring strategy only).
    pub colors: usize,
    /// Number of subdomain tasks (Multidep only).
    pub tasks: usize,
    /// mutexinoutset acquisition retries (Multidep only).
    pub mutex_retries: usize,
}

impl AssemblyPlan {
    /// Build a plan for `elems` of `mesh` under `strategy`.
    /// `n_subdomains` controls the Multidep decomposition (ignored by
    /// the other strategies); a good default is several times the
    /// executor count.
    pub fn new(
        mesh: &Mesh,
        elems: Vec<u32>,
        strategy: AssemblyStrategy,
        n_subdomains: usize,
    ) -> AssemblyPlan {
        let weights: Vec<f64> =
            elems.iter().map(|&e| mesh.kinds[e as usize].cost_weight()).collect();
        let mut plan = AssemblyPlan {
            strategy,
            color_classes: None,
            subdomains: None,
            grain: 32,
            batches: None,
            lane_kernels: false,
            batched_sgs: false,
            elems,
        };
        match strategy {
            AssemblyStrategy::Serial | AssemblyStrategy::Atomics => {}
            AssemblyStrategy::Coloring => {
                let g = local_element_graph(mesh, &plan.elems, &weights);
                let coloring = greedy_coloring(&g);
                // Map local ids back to global element ids.
                let classes = coloring
                    .color_classes()
                    .into_iter()
                    .map(|class| class.into_iter().map(|li| plan.elems[li as usize]).collect())
                    .collect();
                plan.color_classes = Some(classes);
            }
            AssemblyStrategy::Multidep => {
                let n_sub = n_subdomains.max(1).min(plan.elems.len().max(1));
                let d = decompose_subdomains(mesh, &plan.elems, &weights, n_sub);
                // One mutex object per adjacency edge (s < t).
                let mut edge_id = std::collections::HashMap::new();
                let mut next = 0usize;
                let mut objs: Vec<Vec<usize>> = vec![Vec::new(); d.num_subdomains()];
                for (s, neigh) in d.adjacency.iter().enumerate() {
                    for &t in neigh {
                        let key = (s.min(t as usize), s.max(t as usize));
                        let id = *edge_id.entry(key).or_insert_with(|| {
                            let id = next;
                            next += 1;
                            id
                        });
                        objs[s].push(id);
                    }
                }
                plan.subdomains = Some((d.members, objs));
            }
        }
        plan
    }

    /// [`AssemblyPlan::new`] plus a kind-batched SoA schedule built
    /// against `pattern`'s sparsity (gather lists, precomputed scatter
    /// indices, cached element lengths) — the opt-in `LayoutPlan`
    /// batched-assembly path. The momentum and Poisson matrices of a
    /// mesh share one pattern, so one schedule serves both systems.
    pub fn with_batches(
        mesh: &Mesh,
        elems: Vec<u32>,
        strategy: AssemblyStrategy,
        n_subdomains: usize,
        pattern: &CsrMatrix,
    ) -> AssemblyPlan {
        let mut plan = AssemblyPlan::new(mesh, elems, strategy, n_subdomains);
        let units: Vec<crate::batch::BatchSet> = match strategy {
            AssemblyStrategy::Serial | AssemblyStrategy::Atomics => {
                vec![crate::batch::BatchSet::build(mesh, pattern, &plan.elems)]
            }
            AssemblyStrategy::Coloring => plan
                .color_classes
                .as_ref()
                .expect("coloring plan")
                .iter()
                .map(|class| crate::batch::BatchSet::build(mesh, pattern, class))
                .collect(),
            AssemblyStrategy::Multidep => plan
                .subdomains
                .as_ref()
                .expect("multidep plan")
                .0
                .iter()
                .map(|members| crate::batch::BatchSet::build(mesh, pattern, members))
                .collect(),
        };
        plan.batches = Some(crate::batch::BatchSchedule { units });
        plan
    }

    /// Number of colors (0 unless Coloring).
    pub fn num_colors(&self) -> usize {
        self.color_classes.as_ref().map_or(0, |c| c.len())
    }

    /// Number of subdomain tasks (0 unless Multidep).
    pub fn num_subdomains(&self) -> usize {
        self.subdomains.as_ref().map_or(0, |(m, _)| m.len())
    }

    /// The batched schedule, if this plan was built with
    /// [`AssemblyPlan::with_batches`].
    pub fn batch_schedule(&self) -> Option<&crate::batch::BatchSchedule> {
        self.batches.as_ref()
    }

    /// Per-subdomain mutexinoutset object lists (Multidep only).
    pub(crate) fn mutex_objs(&self) -> Option<&Vec<Vec<usize>>> {
        self.subdomains.as_ref().map(|(_, objs)| objs)
    }

    /// The atomics-loop grain.
    pub(crate) fn atomics_grain(&self) -> usize {
        self.grain
    }
}

/// A local contribution ready to scatter: `nn` nodes, dense block `a`,
/// and `rhs_dim` right-hand-side components per node.
struct LocalBlock {
    nn: usize,
    a: [[f64; MAX_NODES]; MAX_NODES],
    b: [[f64; 3]; MAX_NODES],
}

impl From<LocalMomentum> for LocalBlock {
    fn from(m: LocalMomentum) -> Self {
        LocalBlock { nn: m.nn, a: m.a, b: m.b }
    }
}

impl From<LocalPoisson> for LocalBlock {
    fn from(p: LocalPoisson) -> Self {
        let mut b = [[0.0; 3]; MAX_NODES];
        for i in 0..p.nn {
            b[i][0] = p.b[i];
        }
        LocalBlock { nn: p.nn, a: p.l, b }
    }
}

/// Generic strategy-dispatched assembly of a scalar CSR matrix plus up
/// to 3 RHS component vectors. `compute` produces the local block of one
/// element (given a per-executor scratch).
fn assemble_generic<K>(
    pool: &ThreadPool,
    mesh: &Mesh,
    plan: &AssemblyPlan,
    rhs_dim: usize,
    compute: K,
    matrix: &mut CsrMatrix,
    rhs: &mut [Vec<f64>],
) -> AssemblyStats
where
    K: Fn(&mut ElementScratch, usize) -> Option<LocalBlock> + Sync,
{
    assert!(rhs_dim <= 3 && rhs.len() == rhs_dim);
    cfpd_telemetry::count!("solver.assemblies");
    cfpd_telemetry::count!("solver.assembly_elements", plan.elems.len() as u64);
    let mut stats = AssemblyStats {
        elements: plan.elems.len(),
        weighted_ops: plan
            .elems
            .iter()
            .map(|&e| mesh.kinds[e as usize].cost_weight())
            .sum(),
        colors: plan.num_colors(),
        tasks: plan.num_subdomains(),
        ..Default::default()
    };

    let (pattern, values) = matrix.split_mut();
    match plan.strategy {
        AssemblyStrategy::Serial => {
            let mut scratch = ElementScratch::default();
            for &e in &plan.elems {
                let e = e as usize;
                let lb = compute(&mut scratch, e).expect("degenerate element");
                let nodes = mesh.elem_nodes(e);
                for i in 0..lb.nn {
                    let gi = nodes[i] as usize;
                    for j in 0..lb.nn {
                        let idx = pattern.entry_index(gi, nodes[j] as usize);
                        values[idx] += lb.a[i][j];
                    }
                    for (c, r) in rhs.iter_mut().enumerate() {
                        r[gi] += lb.b[i][c];
                    }
                }
            }
        }
        AssemblyStrategy::Atomics => {
            let av = AtomicView::from_slice(values);
            let rvs: Vec<AtomicView> =
                rhs.iter_mut().map(|r| AtomicView::from_slice(r)).collect();
            let elems = &plan.elems;
            parallel_for(pool, 0..elems.len(), plan.grain, |range| {
                let mut scratch = ElementScratch::default();
                for k in range {
                    let e = elems[k] as usize;
                    let lb = compute(&mut scratch, e).expect("degenerate element");
                    let nodes = mesh.elem_nodes(e);
                    for i in 0..lb.nn {
                        let gi = nodes[i] as usize;
                        for j in 0..lb.nn {
                            let idx = pattern.entry_index(gi, nodes[j] as usize);
                            av.add_at(idx, lb.a[i][j]);
                        }
                        for (c, rv) in rvs.iter().enumerate() {
                            rv.add_at(gi, lb.b[i][c]);
                        }
                    }
                }
            });
            stats.atomic_adds = av.atomic_ops.load(Ordering::Relaxed)
                + rvs.iter().map(|r| r.atomic_ops.load(Ordering::Relaxed)).sum::<usize>();
        }
        AssemblyStrategy::Coloring => {
            let dv = DisjointView::from_slice(values);
            let rvs: Vec<DisjointView> =
                rhs.iter_mut().map(|r| DisjointView::from_slice(r)).collect();
            let classes = plan.color_classes.as_ref().expect("coloring plan");
            for class in classes {
                parallel_for(pool, 0..class.len(), plan.grain, |range| {
                    let mut scratch = ElementScratch::default();
                    for k in range {
                        let e = class[k] as usize;
                        let lb = compute(&mut scratch, e).expect("degenerate element");
                        let nodes = mesh.elem_nodes(e);
                        for i in 0..lb.nn {
                            let gi = nodes[i] as usize;
                            for j in 0..lb.nn {
                                let idx = pattern.entry_index(gi, nodes[j] as usize);
                                // SAFETY: same-color elements share no
                                // node, so concurrent writes are disjoint.
                                unsafe { dv.add_at(idx, lb.a[i][j]) };
                            }
                            for (c, rv) in rvs.iter().enumerate() {
                                // SAFETY: as above (row index is a node
                                // of this element).
                                unsafe { rv.add_at(gi, lb.b[i][c]) };
                            }
                        }
                    }
                });
            }
        }
        AssemblyStrategy::Multidep => {
            let dv = DisjointView::from_slice(values);
            let rvs: Vec<DisjointView> =
                rhs.iter_mut().map(|r| DisjointView::from_slice(r)).collect();
            let (members, objs) = plan.subdomains.as_ref().expect("multidep plan");
            let retries = AtomicUsize::new(0);
            let mut graph = TaskGraph::new();
            for (s, elems) in members.iter().enumerate() {
                let deps: Vec<Dep> = objs[s].iter().map(|&o| Dep::mutex(o)).collect();
                let dv = &dv;
                let rvs = &rvs;
                let compute = &compute;
                graph.add_task(&deps, move || {
                    let mut scratch = ElementScratch::default();
                    for &e in elems {
                        let e = e as usize;
                        let lb = compute(&mut scratch, e).expect("degenerate element");
                        let nodes = mesh.elem_nodes(e);
                        for i in 0..lb.nn {
                            let gi = nodes[i] as usize;
                            for j in 0..lb.nn {
                                let idx = pattern.entry_index(gi, nodes[j] as usize);
                                // SAFETY: adjacent subdomains are mutually
                                // excluded via mutexinoutset; non-adjacent
                                // ones share no node.
                                unsafe { dv.add_at(idx, lb.a[i][j]) };
                            }
                            for (c, rv) in rvs.iter().enumerate() {
                                // SAFETY: as above.
                                unsafe { rv.add_at(gi, lb.b[i][c]) };
                            }
                        }
                    }
                });
            }
            let exec = graph.execute(pool);
            retries.fetch_add(exec.mutex_retries, Ordering::Relaxed);
            stats.mutex_retries = retries.load(Ordering::Relaxed);
        }
    }
    stats
}

/// Assemble the momentum system (matrix + 3-component RHS) over
/// `plan.elems` using the plan's strategy.
#[allow(clippy::too_many_arguments)]
pub fn assemble_momentum(
    pool: &ThreadPool,
    refs: &[RefElement; 3],
    mesh: &Mesh,
    plan: &AssemblyPlan,
    velocity: &[Vec3],
    pressure: &[f64],
    props: FluidProps,
    dt: f64,
    body_force: Vec3,
    matrix: &mut CsrMatrix,
    rhs: &mut [Vec<f64>],
) -> AssemblyStats {
    assemble_generic(
        pool,
        mesh,
        plan,
        3,
        |scratch, e| {
            let (kind, nn) = scratch.load_with_pressure(mesh, velocity, pressure, e);
            let h = mesh.volume(e).abs().cbrt();
            momentum_kernel(refs, scratch, kind, nn, props, dt, h, body_force)
                .map(LocalBlock::from)
        },
        matrix,
        rhs,
    )
}

/// Assemble the pressure-Poisson system (matrix + scalar RHS).
#[allow(clippy::too_many_arguments)]
pub fn assemble_poisson(
    pool: &ThreadPool,
    refs: &[RefElement; 3],
    mesh: &Mesh,
    plan: &AssemblyPlan,
    velocity: &[Vec3],
    props: FluidProps,
    dt: f64,
    matrix: &mut CsrMatrix,
    rhs: &mut [Vec<f64>],
) -> AssemblyStats {
    assemble_generic(
        pool,
        mesh,
        plan,
        1,
        |scratch, e| {
            let (kind, nn) = scratch.load(mesh, velocity, e);
            poisson_kernel(refs, scratch, kind, nn, props, dt).map(LocalBlock::from)
        },
        matrix,
        rhs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    struct Fixture {
        mesh: Mesh,
        refs: [RefElement; 3],
        pool: ThreadPool,
        velocity: Vec<Vec3>,
    }

    fn fixture() -> Fixture {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let velocity = am
            .mesh
            .coords
            .iter()
            .map(|p| Vec3::new(p.z * 2.0, p.x, -p.y * 0.5))
            .collect();
        Fixture { mesh: am.mesh, refs: RefElement::all(), pool: ThreadPool::new(4), velocity }
    }

    fn assemble_with(f: &Fixture, strategy: AssemblyStrategy) -> (CsrMatrix, Vec<Vec<f64>>, AssemblyStats) {
        let n2e = f.mesh.node_to_elements();
        let mut a = CsrMatrix::from_mesh(&f.mesh, &n2e);
        let n = f.mesh.num_nodes();
        let mut rhs = vec![vec![0.0; n]; 3];
        let elems: Vec<u32> = (0..f.mesh.num_elements() as u32).collect();
        let plan = AssemblyPlan::new(&f.mesh, elems, strategy, 24);
        let zero_p = vec![0.0; f.mesh.num_nodes()];
        let stats = assemble_momentum(
            &f.pool,
            &f.refs,
            &f.mesh,
            &plan,
            &f.velocity,
            &zero_p,
            FluidProps::default(),
            1e-4,
            Vec3::new(0.0, 0.0, -9.81),
            &mut a,
            &mut rhs,
        );
        (a, rhs, stats)
    }

    fn assert_matrices_close(a: &CsrMatrix, b: &CsrMatrix, tol: f64) {
        assert_eq!(a.nnz(), b.nnz());
        for k in 0..a.nnz() {
            let (x, y) = (a.values[k], b.values[k]);
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!(
                (x - y).abs() <= tol * scale,
                "entry {k}: {x} vs {y}"
            );
        }
    }

    /// The headline correctness property: all four strategies assemble
    /// the same matrix and RHS (up to FP summation order).
    #[test]
    fn all_strategies_assemble_identically() {
        let f = fixture();
        let (a_ref, rhs_ref, _) = assemble_with(&f, AssemblyStrategy::Serial);
        for strategy in [
            AssemblyStrategy::Atomics,
            AssemblyStrategy::Coloring,
            AssemblyStrategy::Multidep,
        ] {
            let (a, rhs, _) = assemble_with(&f, strategy);
            assert_matrices_close(&a_ref, &a, 1e-9);
            for c in 0..3 {
                for i in 0..rhs_ref[c].len() {
                    let (x, y) = (rhs_ref[c][i], rhs[c][i]);
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() <= 1e-9 * scale,
                        "{strategy:?} rhs[{c}][{i}]: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn atomics_counts_every_scatter() {
        let f = fixture();
        let (_, _, stats) = assemble_with(&f, AssemblyStrategy::Atomics);
        // Each element contributes nn*nn matrix + nn*3 rhs atomic adds.
        let expected: usize = (0..f.mesh.num_elements())
            .map(|e| {
                let nn = f.mesh.kinds[e].num_nodes();
                nn * nn + nn * 3
            })
            .sum();
        assert_eq!(stats.atomic_adds, expected);
    }

    #[test]
    fn coloring_plan_reports_colors() {
        let f = fixture();
        let (_, _, stats) = assemble_with(&f, AssemblyStrategy::Coloring);
        assert!(stats.colors > 1, "hybrid meshes need many colors, got {}", stats.colors);
        assert_eq!(stats.atomic_adds, 0);
    }

    #[test]
    fn multidep_plan_reports_tasks() {
        let f = fixture();
        let (_, _, stats) = assemble_with(&f, AssemblyStrategy::Multidep);
        assert_eq!(stats.tasks, 24);
        assert_eq!(stats.atomic_adds, 0);
    }

    #[test]
    fn poisson_matrix_is_symmetric() {
        let f = fixture();
        let n2e = f.mesh.node_to_elements();
        let mut a = CsrMatrix::from_mesh(&f.mesh, &n2e);
        let n = f.mesh.num_nodes();
        let mut rhs = vec![vec![0.0; n]];
        let elems: Vec<u32> = (0..f.mesh.num_elements() as u32).collect();
        let plan = AssemblyPlan::new(&f.mesh, elems, AssemblyStrategy::Multidep, 16);
        assemble_poisson(
            &f.pool,
            &f.refs,
            &f.mesh,
            &plan,
            &f.velocity,
            FluidProps::default(),
            1e-4,
            &mut a,
            &mut rhs,
        );
        let pat = a.pattern();
        for row in 0..a.n {
            let lo = a.row_ptr[row] as usize;
            let hi = a.row_ptr[row + 1] as usize;
            for k in lo..hi {
                let col = a.col_idx[k] as usize;
                let tr = a.values[pat.entry_index(col, row)];
                let scale = a.values[k].abs().max(tr.abs()).max(1e-12);
                assert!(
                    (a.values[k] - tr).abs() < 1e-9 * scale,
                    "L[{row},{col}] asymmetric"
                );
            }
        }
    }

    #[test]
    fn partial_element_set_assembly() {
        // Assembling half the elements (one MPI domain) works and only
        // touches rows of nodes in that half.
        let f = fixture();
        let n2e = f.mesh.node_to_elements();
        let mut a = CsrMatrix::from_mesh(&f.mesh, &n2e);
        let n = f.mesh.num_nodes();
        let mut rhs = vec![vec![0.0; n]; 3];
        let half: Vec<u32> = (0..(f.mesh.num_elements() / 2) as u32).collect();
        let touched: std::collections::HashSet<u32> = half
            .iter()
            .flat_map(|&e| f.mesh.elem_nodes(e as usize).iter().copied())
            .collect();
        let plan = AssemblyPlan::new(&f.mesh, half, AssemblyStrategy::Coloring, 8);
        let zero_p = vec![0.0; f.mesh.num_nodes()];
        assemble_momentum(
            &f.pool,
            &f.refs,
            &f.mesh,
            &plan,
            &f.velocity,
            &zero_p,
            FluidProps::default(),
            1e-4,
            Vec3::ZERO,
            &mut a,
            &mut rhs,
        );
        for node in 0..n as u32 {
            if !touched.contains(&node) {
                assert_eq!(rhs[0][node as usize], 0.0, "untouched node {node} has rhs");
            }
        }
    }
}
