//! FEM element kernels: the local dense matrices/vectors computed per
//! element during the paper's *matrix assembly* phase, and the
//! per-element subgrid-scale (SGS) update of the VMS stabilization.

use crate::shape::{map_qp, MappedQp, RefElement, MAX_NODES};
use cfpd_mesh::{ElementKind, Mesh, Vec3};

/// Physical constants of the fluid (air at body temperature by default,
/// matching a respiratory simulation).
#[derive(Debug, Clone, Copy)]
pub struct FluidProps {
    /// Density ρ_f [kg/m³].
    pub density: f64,
    /// Dynamic viscosity µ_f [Pa·s].
    pub viscosity: f64,
}

impl Default for FluidProps {
    fn default() -> Self {
        // Air at ~37 °C.
        FluidProps { density: 1.14, viscosity: 1.9e-5 }
    }
}

/// Local output of the momentum kernel for one element: the matrix
/// `A_ij = ∫ (ρ/dt) N_i N_j + µ ∇N_i·∇N_j + ρ N_i (u·∇N_j)` and the
/// RHS `b_i = ∫ (ρ/dt) N_i u_n + ρ N_i f` per velocity component.
#[derive(Debug, Clone)]
pub struct LocalMomentum {
    pub nn: usize,
    pub a: [[f64; MAX_NODES]; MAX_NODES],
    pub b: [[f64; 3]; MAX_NODES],
}

/// Local Laplacian matrix `L_ij = ∫ ∇N_i·∇N_j` and divergence RHS
/// `b_i = ∫ ∇N_i · u` (weak pressure-Poisson right-hand side).
#[derive(Debug, Clone)]
pub struct LocalPoisson {
    pub nn: usize,
    pub l: [[f64; MAX_NODES]; MAX_NODES],
    pub b: [f64; MAX_NODES],
}

/// Scratch holding per-element node data, reused across elements by one
/// executor (avoids per-element allocation in the hot loop).
#[derive(Debug, Clone)]
pub struct ElementScratch {
    pub coords: [Vec3; MAX_NODES],
    pub vel: [Vec3; MAX_NODES],
    /// Nodal pressure of the previous step (incremental projection).
    pub pres: [f64; MAX_NODES],
}

impl Default for ElementScratch {
    fn default() -> Self {
        ElementScratch {
            coords: [Vec3::ZERO; MAX_NODES],
            vel: [Vec3::ZERO; MAX_NODES],
            pres: [0.0; MAX_NODES],
        }
    }
}

impl ElementScratch {
    /// Load coordinates and velocities of element `e` (pressure zeroed).
    #[inline]
    pub fn load(&mut self, mesh: &Mesh, velocity: &[Vec3], e: usize) -> (ElementKind, usize) {
        let kind = mesh.kinds[e];
        let nodes = mesh.elem_nodes(e);
        for (k, &v) in nodes.iter().enumerate() {
            self.coords[k] = mesh.coords[v as usize];
            self.vel[k] = velocity[v as usize];
            self.pres[k] = 0.0;
        }
        (kind, nodes.len())
    }

    /// Load coordinates, velocities and nodal pressure of element `e`.
    #[inline]
    pub fn load_with_pressure(
        &mut self,
        mesh: &Mesh,
        velocity: &[Vec3],
        pressure: &[f64],
        e: usize,
    ) -> (ElementKind, usize) {
        let (kind, nn) = self.load(mesh, velocity, e);
        for (k, &v) in mesh.elem_nodes(e).iter().enumerate() {
            self.pres[k] = pressure[v as usize];
        }
        (kind, nn)
    }

    /// Load coordinates and velocities through a precomputed gather
    /// list (one batch row of a kind-batched SoA plan). Reads the same
    /// values in the same order as [`ElementScratch::load`], so the
    /// resulting kernel inputs are bit-identical.
    #[inline]
    pub fn load_gather(&mut self, coords: &[Vec3], velocity: &[Vec3], nodes: &[u32]) {
        for (k, &v) in nodes.iter().enumerate() {
            self.coords[k] = coords[v as usize];
            self.vel[k] = velocity[v as usize];
            self.pres[k] = 0.0;
        }
    }

    /// [`ElementScratch::load_gather`] plus nodal pressure.
    #[inline]
    pub fn load_gather_with_pressure(
        &mut self,
        coords: &[Vec3],
        velocity: &[Vec3],
        pressure: &[f64],
        nodes: &[u32],
    ) {
        self.load_gather(coords, velocity, nodes);
        for (k, &v) in nodes.iter().enumerate() {
            self.pres[k] = pressure[v as usize];
        }
    }
}

/// Momentum (convection–diffusion–reaction) element matrix and RHS for
/// the implicit velocity step, with streamline-upwind (SU) artificial
/// diffusion `k_su = ρ|u|h/2` along the flow direction — the minimal
/// stabilization that keeps the Galerkin convection term stable at the
/// high element Péclet numbers of an airway inhalation (a simplified
/// stand-in for Alya's full VMS stabilization, DESIGN.md §7).
///
/// `h_elem` is the characteristic element length (cbrt of volume);
/// `body_force` a constant volumetric force.
#[allow(clippy::too_many_arguments)]
pub fn momentum_kernel(
    refs: &[RefElement; 3],
    scratch: &ElementScratch,
    kind: ElementKind,
    nn: usize,
    props: FluidProps,
    dt: f64,
    h_elem: f64,
    body_force: Vec3,
) -> Option<LocalMomentum> {
    let re = &refs[RefElement::index_of(kind)];
    let mut out = LocalMomentum { nn, a: [[0.0; MAX_NODES]; MAX_NODES], b: [[0.0; 3]; MAX_NODES] };
    let rho_dt = props.density / dt;
    for qp in &re.qps {
        let m: MappedQp = map_qp(qp, &scratch.coords, nn)?;
        // Convecting velocity and old velocity at the point.
        let mut uc = Vec3::ZERO;
        for i in 0..nn {
            uc += scratch.vel[i] * m.n[i];
        }
        let speed = uc.norm();
        let (su_coef, udir) = if speed > 1e-12 {
            (0.5 * props.density * speed * h_elem, uc / speed)
        } else {
            (0.0, Vec3::ZERO)
        };
        for i in 0..nn {
            let ni = m.n[i];
            let gi = m.grad[i];
            let gi_s = udir.x * gi[0] + udir.y * gi[1] + udir.z * gi[2];
            for j in 0..nn {
                let gj = m.grad[j];
                let mass = rho_dt * ni * m.n[j];
                let diff = props.viscosity * (gi[0] * gj[0] + gi[1] * gj[1] + gi[2] * gj[2]);
                let conv =
                    props.density * ni * (uc.x * gj[0] + uc.y * gj[1] + uc.z * gj[2]);
                let gj_s = udir.x * gj[0] + udir.y * gj[1] + udir.z * gj[2];
                let su = su_coef * gi_s * gj_s;
                out.a[i][j] += (mass + diff + conv + su) * m.dvol;
            }
            // RHS: (ρ/dt) u_n + ρ f − ∇p^n (incremental projection:
            // the momentum step sees the previous pressure, the Poisson
            // step then solves only for the increment).
            let mut gp = Vec3::ZERO;
            for k in 0..nn {
                gp += Vec3::new(m.grad[k][0], m.grad[k][1], m.grad[k][2]) * scratch.pres[k];
            }
            let rhs = (uc * rho_dt + body_force * props.density - gp) * (ni * m.dvol);
            out.b[i][0] += rhs.x;
            out.b[i][1] += rhs.y;
            out.b[i][2] += rhs.z;
        }
    }
    Some(out)
}

/// [`momentum_kernel`] monomorphized over the node count: the inner
/// quadrature loops run over the compile-time constant `NN`, so the
/// compiler unrolls them and the per-element `ElementKind` branch
/// disappears from the batch inner loop. The floating-point operation
/// sequence is identical to the dynamic-`nn` kernel, so the local
/// matrices are **bit-identical** (asserted by the batching tests).
#[allow(clippy::too_many_arguments)]
pub fn momentum_kernel_n<const NN: usize>(
    re: &RefElement,
    scratch: &ElementScratch,
    props: FluidProps,
    dt: f64,
    h_elem: f64,
    body_force: Vec3,
) -> Option<LocalMomentum> {
    let mut out =
        LocalMomentum { nn: NN, a: [[0.0; MAX_NODES]; MAX_NODES], b: [[0.0; 3]; MAX_NODES] };
    let rho_dt = props.density / dt;
    for qp in &re.qps {
        let m: MappedQp = map_qp(qp, &scratch.coords, NN)?;
        let mut uc = Vec3::ZERO;
        for i in 0..NN {
            uc += scratch.vel[i] * m.n[i];
        }
        let speed = uc.norm();
        let (su_coef, udir) = if speed > 1e-12 {
            (0.5 * props.density * speed * h_elem, uc / speed)
        } else {
            (0.0, Vec3::ZERO)
        };
        for i in 0..NN {
            let ni = m.n[i];
            let gi = m.grad[i];
            let gi_s = udir.x * gi[0] + udir.y * gi[1] + udir.z * gi[2];
            for j in 0..NN {
                let gj = m.grad[j];
                let mass = rho_dt * ni * m.n[j];
                let diff = props.viscosity * (gi[0] * gj[0] + gi[1] * gj[1] + gi[2] * gj[2]);
                let conv =
                    props.density * ni * (uc.x * gj[0] + uc.y * gj[1] + uc.z * gj[2]);
                let gj_s = udir.x * gj[0] + udir.y * gj[1] + udir.z * gj[2];
                let su = su_coef * gi_s * gj_s;
                out.a[i][j] += (mass + diff + conv + su) * m.dvol;
            }
            let mut gp = Vec3::ZERO;
            for k in 0..NN {
                gp += Vec3::new(m.grad[k][0], m.grad[k][1], m.grad[k][2]) * scratch.pres[k];
            }
            let rhs = (uc * rho_dt + body_force * props.density - gp) * (ni * m.dvol);
            out.b[i][0] += rhs.x;
            out.b[i][1] += rhs.y;
            out.b[i][2] += rhs.z;
        }
    }
    Some(out)
}

/// Pressure-Poisson element matrix (`∇N·∇N`) and weak divergence RHS
/// `(ρ/dt) ∫ ∇N_i · u*`.
pub fn poisson_kernel(
    refs: &[RefElement; 3],
    scratch: &ElementScratch,
    kind: ElementKind,
    nn: usize,
    props: FluidProps,
    dt: f64,
) -> Option<LocalPoisson> {
    let re = &refs[RefElement::index_of(kind)];
    let mut out = LocalPoisson { nn, l: [[0.0; MAX_NODES]; MAX_NODES], b: [0.0; MAX_NODES] };
    let rho_dt = props.density / dt;
    for qp in &re.qps {
        let m = map_qp(qp, &scratch.coords, nn)?;
        let mut u = Vec3::ZERO;
        for i in 0..nn {
            u += scratch.vel[i] * m.n[i];
        }
        for i in 0..nn {
            let gi = m.grad[i];
            for j in 0..nn {
                let gj = m.grad[j];
                out.l[i][j] += (gi[0] * gj[0] + gi[1] * gj[1] + gi[2] * gj[2]) * m.dvol;
            }
            out.b[i] += rho_dt * (gi[0] * u.x + gi[1] * u.y + gi[2] * u.z) * m.dvol;
        }
    }
    Some(out)
}

/// [`poisson_kernel`] monomorphized over the node count; bit-identical
/// output (see [`momentum_kernel_n`]).
pub fn poisson_kernel_n<const NN: usize>(
    re: &RefElement,
    scratch: &ElementScratch,
    props: FluidProps,
    dt: f64,
) -> Option<LocalPoisson> {
    let mut out = LocalPoisson { nn: NN, l: [[0.0; MAX_NODES]; MAX_NODES], b: [0.0; MAX_NODES] };
    let rho_dt = props.density / dt;
    for qp in &re.qps {
        let m = map_qp(qp, &scratch.coords, NN)?;
        let mut u = Vec3::ZERO;
        for i in 0..NN {
            u += scratch.vel[i] * m.n[i];
        }
        for i in 0..NN {
            let gi = m.grad[i];
            for j in 0..NN {
                let gj = m.grad[j];
                out.l[i][j] += (gi[0] * gj[0] + gi[1] * gj[1] + gi[2] * gj[2]) * m.dvol;
            }
            out.b[i] += rho_dt * (gi[0] * u.x + gi[1] * u.y + gi[2] * u.z) * m.dvol;
        }
    }
    Some(out)
}

/// Lumped mass (row-sum) contributions of one element.
pub fn lumped_mass_kernel(
    refs: &[RefElement; 3],
    scratch: &ElementScratch,
    kind: ElementKind,
    nn: usize,
) -> Option<[f64; MAX_NODES]> {
    let re = &refs[RefElement::index_of(kind)];
    let mut out = [0.0; MAX_NODES];
    for qp in &re.qps {
        let m = map_qp(qp, &scratch.coords, nn)?;
        for i in 0..nn {
            out[i] += m.n[i] * m.dvol;
        }
    }
    Some(out)
}

/// One element's subgrid-scale update (VMS-like): iterate the algebraic
/// model `u' = τ · R(u, u')` at each quadrature point, where the
/// stabilization time τ follows Codina:
/// `τ⁻¹ = c1 ν/h² + c2 |u|/h`, and the residual is the convective one.
/// Read-only on global fields, writes only to the element's own SGS
/// storage — the paper's point that SGS needs *no* atomics (§4.3).
///
/// Returns the number of inner iterations used (a per-element cost that
/// varies with the local flow — an organic imbalance source).
#[allow(clippy::too_many_arguments)]
pub fn sgs_kernel(
    refs: &[RefElement; 3],
    scratch: &ElementScratch,
    kind: ElementKind,
    nn: usize,
    props: FluidProps,
    h_elem: f64,
    sgs: &mut [Vec3],
    max_iters: usize,
    tol: f64,
) -> usize {
    let re = &refs[RefElement::index_of(kind)];
    sgs_kernel_on(re, scratch, nn, props, h_elem, sgs, max_iters, tol)
}

/// [`sgs_kernel`] with the reference element resolved by the caller
/// (the kind-batched SGS sweep hoists the dispatch out of its hot
/// loop). Identical floating-point sequence.
#[allow(clippy::too_many_arguments)]
pub fn sgs_kernel_on(
    re: &RefElement,
    scratch: &ElementScratch,
    nn: usize,
    props: FluidProps,
    h_elem: f64,
    sgs: &mut [Vec3],
    max_iters: usize,
    tol: f64,
) -> usize {
    let nu = props.viscosity / props.density;
    let mut iters_used = 1;
    for (q, qp) in re.qps.iter().enumerate() {
        let m = match map_qp(qp, &scratch.coords, nn) {
            Some(m) => m,
            None => continue,
        };
        // Resolved velocity and its gradient at the point.
        let mut u = Vec3::ZERO;
        let mut grad_u = [[0.0f64; 3]; 3];
        for i in 0..nn {
            u += scratch.vel[i] * m.n[i];
            let v = scratch.vel[i];
            for c in 0..3 {
                grad_u[0][c] += m.grad[i][c] * v.x;
                grad_u[1][c] += m.grad[i][c] * v.y;
                grad_u[2][c] += m.grad[i][c] * v.z;
            }
        }
        let mut usg = sgs[q];
        for it in 0..max_iters {
            let a = u + usg; // advective velocity includes the subgrid part
            let tau_inv = 4.0 * nu / (h_elem * h_elem) + 2.0 * a.norm() / h_elem;
            let tau = 1.0 / tau_inv.max(1e-30);
            // Convective residual of the resolved scale: -(a·∇)u.
            let conv = Vec3::new(
                a.x * grad_u[0][0] + a.y * grad_u[0][1] + a.z * grad_u[0][2],
                a.x * grad_u[1][0] + a.y * grad_u[1][1] + a.z * grad_u[1][2],
                a.x * grad_u[2][0] + a.y * grad_u[2][1] + a.z * grad_u[2][2],
            );
            let new = -conv * tau;
            let delta = (new - usg).norm();
            usg = new;
            if delta < tol * (usg.norm() + 1e-30) {
                iters_used = iters_used.max(it + 1);
                break;
            }
            iters_used = iters_used.max(it + 1);
        }
        sgs[q] = usg;
    }
    iters_used
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::MeshBuilder;

    fn unit_tet_mesh() -> Mesh {
        let mut b = MeshBuilder::new();
        let n0 = b.add_node(Vec3::new(0.0, 0.0, 0.0));
        let n1 = b.add_node(Vec3::new(1.0, 0.0, 0.0));
        let n2 = b.add_node(Vec3::new(0.0, 1.0, 0.0));
        let n3 = b.add_node(Vec3::new(0.0, 0.0, 1.0));
        b.add_tet([n0, n1, n2, n3]);
        b.finish()
    }

    #[test]
    fn momentum_mass_term_integrates_to_volume() {
        // With dt = 1, ρ = 1, µ = 0 and zero velocity, A is the mass
        // matrix: sum of all entries = element volume.
        let mesh = unit_tet_mesh();
        let refs = RefElement::all();
        let mut scratch = ElementScratch::default();
        let vel = vec![Vec3::ZERO; mesh.num_nodes()];
        let (kind, nn) = scratch.load(&mesh, &vel, 0);
        let props = FluidProps { density: 1.0, viscosity: 0.0 };
        let lm = momentum_kernel(&refs, &scratch, kind, nn, props, 1.0, 0.1, Vec3::ZERO).unwrap();
        let sum: f64 = (0..nn).flat_map(|i| (0..nn).map(move |j| (i, j)))
            .map(|(i, j)| lm.a[i][j])
            .sum();
        assert!((sum - 1.0 / 6.0).abs() < 1e-12, "mass sum {sum}");
    }

    #[test]
    fn poisson_rows_sum_to_zero() {
        // The Laplacian of a constant is zero: each row of L sums to 0.
        let mesh = unit_tet_mesh();
        let refs = RefElement::all();
        let mut scratch = ElementScratch::default();
        let vel = vec![Vec3::ZERO; mesh.num_nodes()];
        let (kind, nn) = scratch.load(&mesh, &vel, 0);
        let lp = poisson_kernel(&refs, &scratch, kind, nn, FluidProps::default(), 1.0).unwrap();
        for i in 0..nn {
            let s: f64 = lp.l[i][..nn].iter().sum();
            assert!(s.abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn poisson_rhs_zero_for_divergence_free_field() {
        // Constant velocity field is divergence free: weak RHS must be
        // zero when summed over all nodes... individually it equals the
        // boundary flux; use the full-sum property instead: sum_i b_i =
        // (ρ/dt) ∫ div(u) = 0 for constant u (since sum_i ∇N_i = 0).
        let mesh = unit_tet_mesh();
        let refs = RefElement::all();
        let mut scratch = ElementScratch::default();
        let vel = vec![Vec3::new(1.0, 2.0, 3.0); mesh.num_nodes()];
        let (kind, nn) = scratch.load(&mesh, &vel, 0);
        let lp = poisson_kernel(&refs, &scratch, kind, nn, FluidProps::default(), 1.0).unwrap();
        let s: f64 = lp.b[..nn].iter().sum();
        assert!(s.abs() < 1e-12, "sum {s}");
    }

    #[test]
    fn lumped_mass_sums_to_volume() {
        let mesh = unit_tet_mesh();
        let refs = RefElement::all();
        let mut scratch = ElementScratch::default();
        let vel = vec![Vec3::ZERO; mesh.num_nodes()];
        let (kind, nn) = scratch.load(&mesh, &vel, 0);
        let lm = lumped_mass_kernel(&refs, &scratch, kind, nn).unwrap();
        let s: f64 = lm[..nn].iter().sum();
        assert!((s - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sgs_zero_for_uniform_flow() {
        // Uniform velocity has zero gradient -> zero convective residual
        // -> SGS velocity converges to zero.
        let mesh = unit_tet_mesh();
        let refs = RefElement::all();
        let mut scratch = ElementScratch::default();
        let vel = vec![Vec3::new(1.0, 0.0, 0.0); mesh.num_nodes()];
        let (kind, nn) = scratch.load(&mesh, &vel, 0);
        let mut sgs = vec![Vec3::new(0.1, 0.1, 0.1); 8];
        sgs_kernel(&refs, &scratch, kind, nn, FluidProps::default(), 0.5, &mut sgs, 10, 1e-10);
        for v in &sgs[..kind.num_quad_points()] {
            assert!(v.norm() < 1e-9, "sgs {v:?} should vanish");
        }
    }

    #[test]
    fn sgs_nonzero_for_sheared_flow() {
        let mesh = unit_tet_mesh();
        let refs = RefElement::all();
        let mut scratch = ElementScratch::default();
        // Shear u_x = 10 y advected by a constant cross-flow u_y = 5, so
        // the convective residual (a·∇)u is nonzero.
        let vel: Vec<Vec3> =
            mesh.coords.iter().map(|p| Vec3::new(p.y * 10.0, 5.0, 0.0)).collect();
        let (kind, nn) = scratch.load(&mesh, &vel, 0);
        let mut sgs = vec![Vec3::ZERO; 8];
        let iters =
            sgs_kernel(&refs, &scratch, kind, nn, FluidProps::default(), 0.5, &mut sgs, 20, 1e-8);
        assert!(iters >= 2, "sheared flow needs iterations, used {iters}");
        assert!(sgs[0].norm() > 0.0);
    }
}
