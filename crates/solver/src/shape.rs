//! Isoparametric shape functions and quadrature for the hybrid element
//! family (first order: Tet4, Pyr5, Pri6).
//!
//! Conventions:
//! * Tet4 reference: vertices (0,0,0), (1,0,0), (0,1,0), (0,0,1).
//! * Pri6 reference: triangle (ξ,η) with ζ ∈ [0,1]; node `i+3` above `i`.
//! * Pyr5: degenerate ("collapsed-hex") trilinear map of [-1,1]³ with
//!   the four top nodes merged into the apex. The collapse factor is
//!   absorbed by the Jacobian determinant, so a plain 2×2×2 Gauss rule
//!   integrates correctly over the pyramid.

use cfpd_mesh::{ElementKind, Vec3};

/// Maximum nodes per element (prism).
pub const MAX_NODES: usize = 6;
/// Maximum quadrature points per element (pyramid: 8).
pub const MAX_QP: usize = 8;

/// Values of all shape functions and their reference-space gradients at
/// one quadrature point, with the quadrature weight.
#[derive(Debug, Clone, Copy)]
pub struct QuadPoint {
    pub weight: f64,
    /// N_i
    pub n: [f64; MAX_NODES],
    /// dN_i/d(ξ,η,ζ)
    pub dn: [[f64; 3]; MAX_NODES],
}

/// Per-element-type reference data (computed once, cached statically).
#[derive(Debug, Clone)]
pub struct RefElement {
    pub kind: ElementKind,
    pub qps: Vec<QuadPoint>,
}

const GP: f64 = 0.577_350_269_189_625_8; // 1/sqrt(3)

impl RefElement {
    /// Reference data for an element kind.
    pub fn new(kind: ElementKind) -> RefElement {
        let qps = match kind {
            ElementKind::Tet4 => tet4_qps(),
            ElementKind::Pyr5 => pyr5_qps(),
            ElementKind::Pri6 => pri6_qps(),
        };
        debug_assert_eq!(qps.len(), kind.num_quad_points());
        RefElement { kind, qps }
    }

    /// The three cached reference elements, indexable by kind.
    pub fn all() -> [RefElement; 3] {
        [
            RefElement::new(ElementKind::Tet4),
            RefElement::new(ElementKind::Pyr5),
            RefElement::new(ElementKind::Pri6),
        ]
    }

    /// Index of `kind` within [`RefElement::all`].
    #[inline]
    pub fn index_of(kind: ElementKind) -> usize {
        match kind {
            ElementKind::Tet4 => 0,
            ElementKind::Pyr5 => 1,
            ElementKind::Pri6 => 2,
        }
    }
}

fn tet4_shape(x: f64, y: f64, z: f64) -> ([f64; MAX_NODES], [[f64; 3]; MAX_NODES]) {
    let mut n = [0.0; MAX_NODES];
    let mut dn = [[0.0; 3]; MAX_NODES];
    n[0] = 1.0 - x - y - z;
    n[1] = x;
    n[2] = y;
    n[3] = z;
    dn[0] = [-1.0, -1.0, -1.0];
    dn[1] = [1.0, 0.0, 0.0];
    dn[2] = [0.0, 1.0, 0.0];
    dn[3] = [0.0, 0.0, 1.0];
    (n, dn)
}

fn tet4_qps() -> Vec<QuadPoint> {
    // 4-point degree-2 rule; reference volume 1/6.
    let a = 0.585_410_196_624_968_5;
    let b = 0.138_196_601_125_010_5;
    let w = 1.0 / 24.0;
    [(a, b, b), (b, a, b), (b, b, a), (b, b, b)]
        .iter()
        .map(|&(x, y, z)| {
            let (n, dn) = tet4_shape(x, y, z);
            QuadPoint { weight: w, n, dn }
        })
        .collect()
}

fn pri6_shape(x: f64, y: f64, z: f64) -> ([f64; MAX_NODES], [[f64; 3]; MAX_NODES]) {
    // Triangle coords (x, y), extrusion z in [0,1].
    let l = [1.0 - x - y, x, y];
    let dl = [[-1.0, -1.0], [1.0, 0.0], [0.0, 1.0]];
    let mut n = [0.0; MAX_NODES];
    let mut dn = [[0.0; 3]; MAX_NODES];
    for i in 0..3 {
        n[i] = l[i] * (1.0 - z);
        n[i + 3] = l[i] * z;
        dn[i] = [dl[i][0] * (1.0 - z), dl[i][1] * (1.0 - z), -l[i]];
        dn[i + 3] = [dl[i][0] * z, dl[i][1] * z, l[i]];
    }
    (n, dn)
}

fn pri6_qps() -> Vec<QuadPoint> {
    // 3-point triangle rule x 2-point Gauss in z. Reference volume 1/2.
    let tri = [(1.0 / 6.0, 1.0 / 6.0), (2.0 / 3.0, 1.0 / 6.0), (1.0 / 6.0, 2.0 / 3.0)];
    let wt = 1.0 / 6.0;
    let zs = [(0.5 - GP / 2.0, 0.5), (0.5 + GP / 2.0, 0.5)];
    let mut qps = Vec::with_capacity(6);
    for &(x, y) in &tri {
        for &(z, wz) in &zs {
            let (n, dn) = pri6_shape(x, y, z);
            qps.push(QuadPoint { weight: wt * wz, n, dn });
        }
    }
    qps
}

fn pyr5_shape(x: f64, y: f64, z: f64) -> ([f64; MAX_NODES], [[f64; 3]; MAX_NODES]) {
    // Collapsed trilinear hex on [-1,1]^3: bottom nodes 0..3, top nodes
    // all map to node 4 (apex). Hex basis H_i = (1±x)(1±y)(1±z)/8.
    let mut n = [0.0; MAX_NODES];
    let mut dn = [[0.0; 3]; MAX_NODES];
    let xs = [-1.0, 1.0, 1.0, -1.0];
    let ys = [-1.0, -1.0, 1.0, 1.0];
    for i in 0..4 {
        n[i] = (1.0 + xs[i] * x) * (1.0 + ys[i] * y) * (1.0 - z) / 8.0;
        dn[i] = [
            xs[i] * (1.0 + ys[i] * y) * (1.0 - z) / 8.0,
            ys[i] * (1.0 + xs[i] * x) * (1.0 - z) / 8.0,
            -(1.0 + xs[i] * x) * (1.0 + ys[i] * y) / 8.0,
        ];
    }
    // Apex: sum of the four top hex functions = (1+z)/2.
    n[4] = (1.0 + z) / 2.0;
    dn[4] = [0.0, 0.0, 0.5];
    (n, dn)
}

fn pyr5_qps() -> Vec<QuadPoint> {
    // 2x2x2 Gauss on the collapsed hex; each weight 1.
    let mut qps = Vec::with_capacity(8);
    for &x in &[-GP, GP] {
        for &y in &[-GP, GP] {
            for &z in &[-GP, GP] {
                let (n, dn) = pyr5_shape(x, y, z);
                qps.push(QuadPoint { weight: 1.0, n, dn });
            }
        }
    }
    qps
}

/// Geometry of one element at one quadrature point: physical-space shape
/// gradients and the Jacobian-scaled integration weight.
#[derive(Debug, Clone, Copy)]
pub struct MappedQp {
    /// Integration weight × |det J|.
    pub dvol: f64,
    /// N_i (unchanged by the map).
    pub n: [f64; MAX_NODES],
    /// dN_i/d(x,y,z).
    pub grad: [[f64; 3]; MAX_NODES],
}

/// Map one reference quadrature point onto a physical element given its
/// node coordinates. Returns `None` for a non-invertible Jacobian
/// (degenerate element) — callers treat that as a mesh error.
pub fn map_qp(qp: &QuadPoint, coords: &[Vec3], num_nodes: usize) -> Option<MappedQp> {
    // J[r][c] = sum_i dN_i/dxi_r * coord_i[c]
    let mut j = [[0.0f64; 3]; 3];
    for i in 0..num_nodes {
        let c = coords[i];
        for r in 0..3 {
            j[r][0] += qp.dn[i][r] * c.x;
            j[r][1] += qp.dn[i][r] * c.y;
            j[r][2] += qp.dn[i][r] * c.z;
        }
    }
    let det = j[0][0] * (j[1][1] * j[2][2] - j[1][2] * j[2][1])
        - j[0][1] * (j[1][0] * j[2][2] - j[1][2] * j[2][0])
        + j[0][2] * (j[1][0] * j[2][1] - j[1][1] * j[2][0]);
    if det.abs() < 1e-30 {
        return None;
    }
    let inv_det = 1.0 / det;
    // inv[c][r] = adj(J)[c][r] / det  (note transpose: we need J^{-T}
    // applied to reference gradients: grad_x N = J^{-1} (as row op)).
    let inv = [
        [
            (j[1][1] * j[2][2] - j[1][2] * j[2][1]) * inv_det,
            (j[0][2] * j[2][1] - j[0][1] * j[2][2]) * inv_det,
            (j[0][1] * j[1][2] - j[0][2] * j[1][1]) * inv_det,
        ],
        [
            (j[1][2] * j[2][0] - j[1][0] * j[2][2]) * inv_det,
            (j[0][0] * j[2][2] - j[0][2] * j[2][0]) * inv_det,
            (j[0][2] * j[1][0] - j[0][0] * j[1][2]) * inv_det,
        ],
        [
            (j[1][0] * j[2][1] - j[1][1] * j[2][0]) * inv_det,
            (j[0][1] * j[2][0] - j[0][0] * j[2][1]) * inv_det,
            (j[0][0] * j[1][1] - j[0][1] * j[1][0]) * inv_det,
        ],
    ];
    let mut grad = [[0.0f64; 3]; MAX_NODES];
    for i in 0..num_nodes {
        for c in 0..3 {
            // dN/dx_c = sum_r dN/dxi_r * dxi_r/dx_c = sum_r inv[r][c]^T...
            grad[i][c] =
                inv[c][0] * qp.dn[i][0] + inv[c][1] * qp.dn[i][1] + inv[c][2] * qp.dn[i][2];
        }
    }
    Some(MappedQp { dvol: qp.weight * det.abs(), n: qp.n, grad })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} != {b}");
    }

    /// Partition of unity and zero gradient sum at every quadrature
    /// point of every element type.
    #[test]
    fn partition_of_unity() {
        for re in RefElement::all() {
            let nn = re.kind.num_nodes();
            for qp in &re.qps {
                let s: f64 = qp.n[..nn].iter().sum();
                approx(s, 1.0, 1e-12);
                for c in 0..3 {
                    let g: f64 = (0..nn).map(|i| qp.dn[i][c]).sum();
                    approx(g, 0.0, 1e-12);
                }
            }
        }
    }

    /// Quadrature weights sum to the reference volume.
    #[test]
    fn weights_sum_to_reference_volume() {
        let tet = RefElement::new(ElementKind::Tet4);
        approx(tet.qps.iter().map(|q| q.weight).sum(), 1.0 / 6.0, 1e-12);
        let pri = RefElement::new(ElementKind::Pri6);
        approx(pri.qps.iter().map(|q| q.weight).sum(), 0.5, 1e-12);
        let pyr = RefElement::new(ElementKind::Pyr5);
        approx(pyr.qps.iter().map(|q| q.weight).sum(), 8.0, 1e-12);
    }

    /// Integrating 1 over physical elements gives their volume.
    #[test]
    fn integrates_element_volume() {
        // Unit right tet: V = 1/6.
        let tet_coords = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let re = RefElement::new(ElementKind::Tet4);
        let v: f64 = re.qps.iter().map(|q| map_qp(q, &tet_coords, 4).unwrap().dvol).sum();
        approx(v, 1.0 / 6.0, 1e-12);

        // Prism: right triangle base area 1/2, height 2 => V = 1.
        let pri_coords = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(1.0, 0.0, 2.0),
            Vec3::new(0.0, 1.0, 2.0),
        ];
        let re = RefElement::new(ElementKind::Pri6);
        let v: f64 = re.qps.iter().map(|q| map_qp(q, &pri_coords, 6).unwrap().dvol).sum();
        approx(v, 1.0, 1e-10);

        // Pyramid: unit square base, height 1 => V = 1/3.
        let pyr_coords = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.5, 0.5, 1.0),
        ];
        let re = RefElement::new(ElementKind::Pyr5);
        let v: f64 = re.qps.iter().map(|q| map_qp(q, &pyr_coords, 5).unwrap().dvol).sum();
        approx(v, 1.0 / 3.0, 1e-10);
    }

    /// Integrating a linear function f(x) = x + 2y - z over elements is
    /// exact (checks physical gradients and the map together): the
    /// integral equals f(centroid) * volume for simplices; verify on the
    /// tet against the analytic value.
    #[test]
    fn integrates_linear_functions_exactly() {
        let coords = [
            Vec3::new(0.2, 0.1, 0.0),
            Vec3::new(1.3, 0.0, 0.1),
            Vec3::new(0.0, 1.1, 0.2),
            Vec3::new(0.1, 0.0, 1.4),
        ];
        let f = |p: Vec3| p.x + 2.0 * p.y - p.z;
        let re = RefElement::new(ElementKind::Tet4);
        let mut integral = 0.0;
        let mut volume = 0.0;
        for q in &re.qps {
            let m = map_qp(q, &coords, 4).unwrap();
            // Interpolate position and f from nodal values.
            let mut fv = 0.0;
            for i in 0..4 {
                fv += m.n[i] * f(coords[i]);
            }
            integral += fv * m.dvol;
            volume += m.dvol;
        }
        let centroid = (coords[0] + coords[1] + coords[2] + coords[3]) / 4.0;
        approx(integral, f(centroid) * volume, 1e-12);
    }

    /// Physical gradients of a linear nodal field are the exact constant
    /// gradient.
    #[test]
    fn gradients_reproduce_linear_fields() {
        for re in RefElement::all() {
            let nn = re.kind.num_nodes();
            // Generic node placements per type.
            let coords: Vec<Vec3> = match re.kind {
                ElementKind::Tet4 => vec![
                    Vec3::new(0.0, 0.0, 0.0),
                    Vec3::new(1.1, 0.1, 0.0),
                    Vec3::new(0.0, 0.9, 0.1),
                    Vec3::new(0.1, 0.1, 1.2),
                ],
                ElementKind::Pyr5 => vec![
                    Vec3::new(0.0, 0.0, 0.0),
                    Vec3::new(1.0, 0.0, 0.0),
                    Vec3::new(1.0, 1.0, 0.0),
                    Vec3::new(0.0, 1.0, 0.0),
                    Vec3::new(0.5, 0.5, 1.0),
                ],
                ElementKind::Pri6 => vec![
                    Vec3::new(0.0, 0.0, 0.0),
                    Vec3::new(1.0, 0.0, 0.0),
                    Vec3::new(0.0, 1.0, 0.0),
                    Vec3::new(0.0, 0.0, 1.0),
                    Vec3::new(1.0, 0.0, 1.0),
                    Vec3::new(0.0, 1.0, 1.0),
                ],
            };
            let g_exact = [0.7, -1.3, 2.1];
            let nodal: Vec<f64> = coords
                .iter()
                .map(|p| g_exact[0] * p.x + g_exact[1] * p.y + g_exact[2] * p.z)
                .collect();
            for qp in &re.qps {
                let m = map_qp(qp, &coords, nn).unwrap();
                for c in 0..3 {
                    let g: f64 = (0..nn).map(|i| m.grad[i][c] * nodal[i]).sum();
                    approx(g, g_exact[c], 1e-9);
                }
            }
        }
    }

    #[test]
    fn degenerate_element_returns_none() {
        // All four tet nodes coplanar.
        let coords = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.5, 0.5, 0.0),
        ];
        let re = RefElement::new(ElementKind::Tet4);
        assert!(map_qp(&re.qps[0], &coords, 4).is_none());
    }
}
