//! Kind-batched SoA assembly: the opt-in locality path for the matrix
//! assembly phase.
//!
//! The default assembly loop dispatches on `ElementKind` per element
//! and binary-searches the CSR pattern for every scatter-add. Batching
//! groups each parallel unit's elements by kind into contiguous batches
//! with three precomputed SoA side arrays:
//!
//! * `gather`  — `nn × len` node ids (the gather list),
//! * `scatter` — `nn² × len` flat CSR value indices (no pattern search
//!   in the hot loop),
//! * `h`       — cached characteristic element lengths (no per-element
//!   volume computation in the hot loop).
//!
//! Inside a batch the quadrature kernels are monomorphized over the
//! node count ([`crate::kernels::momentum_kernel_n`]), so the inner
//! loops have compile-time trip counts and no per-element branch. The
//! floating-point sequence per element is identical to the dynamic
//! kernels — local matrices are bit-identical; only the order elements
//! are visited (grouped by kind) differs, which the strategy-equivalence
//! tolerance already covers.

use crate::assembly::{AssemblyPlan, AssemblyStats, AssemblyStrategy};
use crate::csr::{AtomicView, CsrMatrix, DisjointView};
use crate::kernels::{
    momentum_kernel_n, poisson_kernel_n, ElementScratch, FluidProps, LocalMomentum, LocalPoisson,
};
use crate::lanes::{momentum_kernel_lanes, poisson_kernel_lanes, LaneScratch, LANES};
use crate::shape::RefElement;
use cfpd_mesh::{ElementKind, Mesh, Vec3};
use cfpd_runtime::{parallel_for, Dep, TaskGraph, ThreadPool};
use std::ops::Range;
use std::sync::atomic::Ordering;

/// One contiguous same-kind batch of elements with its SoA side arrays.
#[derive(Debug, Clone)]
pub struct KindBatch {
    pub kind: ElementKind,
    /// Global element ids, in the original unit order.
    pub elems: Vec<u32>,
    /// Flattened gather list: element `b` reads nodes
    /// `gather[b*nn .. (b+1)*nn]`.
    pub gather: Vec<u32>,
    /// Flattened scatter list: element `b`'s (i,j) entry adds into CSR
    /// value index `scatter[b*nn*nn + i*nn + j]`.
    pub scatter: Vec<u32>,
    /// Characteristic element length `|V|^(1/3)` per element.
    pub h: Vec<f64>,
}

impl KindBatch {
    /// Nodes per element of this batch.
    #[inline]
    pub fn nn(&self) -> usize {
        self.kind.num_nodes()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }
}

/// The batches of one parallel unit (full list, color class, or
/// subdomain), grouped by kind in `Tet4 → Pyr5 → Pri6` order.
#[derive(Debug, Clone, Default)]
pub struct BatchSet {
    pub batches: Vec<KindBatch>,
}

impl BatchSet {
    /// Group `elems` by kind (stable: original relative order kept
    /// within each batch) and precompute gather/scatter/h.
    pub fn build(mesh: &Mesh, pattern: &CsrMatrix, elems: &[u32]) -> BatchSet {
        let mut batches = Vec::new();
        for kind in [ElementKind::Tet4, ElementKind::Pyr5, ElementKind::Pri6] {
            let members: Vec<u32> = elems
                .iter()
                .copied()
                .filter(|&e| mesh.kinds[e as usize] == kind)
                .collect();
            if members.is_empty() {
                continue;
            }
            let nn = kind.num_nodes();
            let mut gather = Vec::with_capacity(nn * members.len());
            let mut scatter = Vec::with_capacity(nn * nn * members.len());
            let mut h = Vec::with_capacity(members.len());
            for &e in &members {
                let nodes = mesh.elem_nodes(e as usize);
                debug_assert_eq!(nodes.len(), nn);
                gather.extend_from_slice(nodes);
                for i in 0..nn {
                    for j in 0..nn {
                        scatter.push(
                            pattern.entry_index(nodes[i] as usize, nodes[j] as usize) as u32,
                        );
                    }
                }
                h.push(mesh.volume(e as usize).abs().cbrt());
            }
            batches.push(KindBatch { kind, elems: members, gather, scatter, h });
        }
        BatchSet { batches }
    }

    /// Total elements across all batches.
    pub fn num_elements(&self) -> usize {
        self.batches.iter().map(KindBatch::len).sum()
    }
}

/// Batched schedule of a plan: one [`BatchSet`] per parallel unit of
/// the strategy (Serial/Atomics: one; Coloring: per class; Multidep:
/// per subdomain).
#[derive(Debug, Clone, Default)]
pub struct BatchSchedule {
    pub units: Vec<BatchSet>,
}

/// Scatter discipline of one batched assembly (atomic vs. plain adds
/// under the strategy's no-conflict guarantee).
trait ScatterSink: Sync {
    fn add_matrix(&self, idx: usize, v: f64);
    fn add_rhs(&self, c: usize, node: usize, v: f64);
}

struct AtomicSink<'a> {
    matrix: AtomicView<'a>,
    rhs: Vec<AtomicView<'a>>,
}

impl ScatterSink for AtomicSink<'_> {
    #[inline]
    fn add_matrix(&self, idx: usize, v: f64) {
        self.matrix.add_at(idx, v);
    }
    #[inline]
    fn add_rhs(&self, c: usize, node: usize, v: f64) {
        self.rhs[c].add_at(node, v);
    }
}

struct DisjointSink<'a> {
    matrix: DisjointView<'a>,
    rhs: Vec<DisjointView<'a>>,
}

impl ScatterSink for DisjointSink<'_> {
    #[inline]
    fn add_matrix(&self, idx: usize, v: f64) {
        // SAFETY: the strategy schedule (serial order, color classes,
        // or mutexinoutset exclusion) guarantees no concurrent access
        // to this entry — same contract as the unbatched path.
        unsafe { self.matrix.add_at(idx, v) };
    }
    #[inline]
    fn add_rhs(&self, c: usize, node: usize, v: f64) {
        // SAFETY: as above (the row is a node of the current element).
        unsafe { self.rhs[c].add_at(node, v) };
    }
}

/// What one batched sweep computes per element; implemented by the
/// momentum and Poisson contexts. `run` processes `range` of `batch`
/// with a monomorphized kernel and scatters through `sink`.
trait BatchCtx: Sync {
    const RHS_DIM: usize;
    fn run<S: ScatterSink>(
        &self,
        batch: &KindBatch,
        range: Range<usize>,
        scratch: &mut ElementScratch,
        sink: &S,
    );
}

struct MomentumCtx<'a> {
    refs: &'a [RefElement; 3],
    coords: &'a [Vec3],
    velocity: &'a [Vec3],
    pressure: &'a [f64],
    props: FluidProps,
    dt: f64,
    body_force: Vec3,
    lanes: bool,
}

impl MomentumCtx<'_> {
    fn run_one<const NN: usize, S: ScatterSink>(
        &self,
        batch: &KindBatch,
        b: usize,
        scratch: &mut ElementScratch,
        sink: &S,
    ) {
        let re = &self.refs[RefElement::index_of(batch.kind)];
        let nodes = &batch.gather[b * NN..(b + 1) * NN];
        scratch.load_gather_with_pressure(self.coords, self.velocity, self.pressure, nodes);
        let lm: LocalMomentum =
            momentum_kernel_n::<NN>(re, scratch, self.props, self.dt, batch.h[b], self.body_force)
                .expect("degenerate element");
        let sc = &batch.scatter[b * NN * NN..(b + 1) * NN * NN];
        for i in 0..NN {
            for j in 0..NN {
                sink.add_matrix(sc[i * NN + j] as usize, lm.a[i][j]);
            }
            let gi = nodes[i] as usize;
            for c in 0..3 {
                sink.add_rhs(c, gi, lm.b[i][c]);
            }
        }
    }

    fn run_n<const NN: usize, S: ScatterSink>(
        &self,
        batch: &KindBatch,
        range: Range<usize>,
        scratch: &mut ElementScratch,
        sink: &S,
    ) {
        let mut b = range.start;
        if self.lanes {
            let re = &self.refs[RefElement::index_of(batch.kind)];
            let mut ls = LaneScratch::default();
            while b + LANES <= range.end {
                ls.load(
                    self.coords,
                    self.velocity,
                    Some(self.pressure),
                    &batch.gather,
                    &batch.h,
                    NN,
                    b,
                );
                let lm = momentum_kernel_lanes::<NN>(re, &ls, self.props, self.dt, self.body_force)
                    .expect("degenerate element");
                // Scatter lane-by-lane in element order: the adds land
                // in the same sequence as the scalar loop.
                for l in 0..LANES {
                    let bb = b + l;
                    let nodes = &batch.gather[bb * NN..(bb + 1) * NN];
                    let sc = &batch.scatter[bb * NN * NN..(bb + 1) * NN * NN];
                    for i in 0..NN {
                        for j in 0..NN {
                            sink.add_matrix(sc[i * NN + j] as usize, lm.a[i][j][l]);
                        }
                        let gi = nodes[i] as usize;
                        for c in 0..3 {
                            sink.add_rhs(c, gi, lm.b[i][c][l]);
                        }
                    }
                }
                b += LANES;
            }
        }
        for bb in b..range.end {
            self.run_one::<NN, S>(batch, bb, scratch, sink);
        }
    }
}

impl BatchCtx for MomentumCtx<'_> {
    const RHS_DIM: usize = 3;
    fn run<S: ScatterSink>(
        &self,
        batch: &KindBatch,
        range: Range<usize>,
        scratch: &mut ElementScratch,
        sink: &S,
    ) {
        match batch.kind {
            ElementKind::Tet4 => self.run_n::<4, S>(batch, range, scratch, sink),
            ElementKind::Pyr5 => self.run_n::<5, S>(batch, range, scratch, sink),
            ElementKind::Pri6 => self.run_n::<6, S>(batch, range, scratch, sink),
        }
    }
}

struct PoissonCtx<'a> {
    refs: &'a [RefElement; 3],
    coords: &'a [Vec3],
    velocity: &'a [Vec3],
    props: FluidProps,
    dt: f64,
    lanes: bool,
}

impl PoissonCtx<'_> {
    fn run_one<const NN: usize, S: ScatterSink>(
        &self,
        batch: &KindBatch,
        b: usize,
        scratch: &mut ElementScratch,
        sink: &S,
    ) {
        let re = &self.refs[RefElement::index_of(batch.kind)];
        let nodes = &batch.gather[b * NN..(b + 1) * NN];
        scratch.load_gather(self.coords, self.velocity, nodes);
        let lp: LocalPoisson =
            poisson_kernel_n::<NN>(re, scratch, self.props, self.dt).expect("degenerate element");
        let sc = &batch.scatter[b * NN * NN..(b + 1) * NN * NN];
        for i in 0..NN {
            for j in 0..NN {
                sink.add_matrix(sc[i * NN + j] as usize, lp.l[i][j]);
            }
            sink.add_rhs(0, nodes[i] as usize, lp.b[i]);
        }
    }

    fn run_n<const NN: usize, S: ScatterSink>(
        &self,
        batch: &KindBatch,
        range: Range<usize>,
        scratch: &mut ElementScratch,
        sink: &S,
    ) {
        let mut b = range.start;
        if self.lanes {
            let re = &self.refs[RefElement::index_of(batch.kind)];
            let mut ls = LaneScratch::default();
            while b + LANES <= range.end {
                ls.load(self.coords, self.velocity, None, &batch.gather, &batch.h, NN, b);
                let lp = poisson_kernel_lanes::<NN>(re, &ls, self.props, self.dt)
                    .expect("degenerate element");
                for l in 0..LANES {
                    let bb = b + l;
                    let nodes = &batch.gather[bb * NN..(bb + 1) * NN];
                    let sc = &batch.scatter[bb * NN * NN..(bb + 1) * NN * NN];
                    for i in 0..NN {
                        for j in 0..NN {
                            sink.add_matrix(sc[i * NN + j] as usize, lp.l[i][j][l]);
                        }
                        sink.add_rhs(0, nodes[i] as usize, lp.b[i][l]);
                    }
                }
                b += LANES;
            }
        }
        for bb in b..range.end {
            self.run_one::<NN, S>(batch, bb, scratch, sink);
        }
    }
}

impl BatchCtx for PoissonCtx<'_> {
    const RHS_DIM: usize = 1;
    fn run<S: ScatterSink>(
        &self,
        batch: &KindBatch,
        range: Range<usize>,
        scratch: &mut ElementScratch,
        sink: &S,
    ) {
        match batch.kind {
            ElementKind::Tet4 => self.run_n::<4, S>(batch, range, scratch, sink),
            ElementKind::Pyr5 => self.run_n::<5, S>(batch, range, scratch, sink),
            ElementKind::Pri6 => self.run_n::<6, S>(batch, range, scratch, sink),
        }
    }
}

/// Run a whole batch set serially through `sink` (one task / one color
/// worker / the serial strategy).
fn run_set<C: BatchCtx, S: ScatterSink>(
    ctx: &C,
    set: &BatchSet,
    scratch: &mut ElementScratch,
    sink: &S,
) {
    for batch in &set.batches {
        ctx.run(batch, 0..batch.len(), scratch, sink);
    }
}

/// Strategy-dispatched batched assembly (the counterpart of the
/// unbatched `assemble_generic`, operating on the plan's
/// [`BatchSchedule`]).
fn assemble_batched<C: BatchCtx>(
    pool: &ThreadPool,
    mesh: &Mesh,
    plan: &AssemblyPlan,
    ctx: &C,
    matrix: &mut CsrMatrix,
    rhs: &mut [Vec<f64>],
) -> AssemblyStats {
    assert_eq!(rhs.len(), C::RHS_DIM);
    cfpd_telemetry::count!("solver.assemblies");
    cfpd_telemetry::count!("solver.assembly_elements", plan.elems.len() as u64);
    let sched = plan
        .batch_schedule()
        .expect("plan built without batches; use AssemblyPlan::with_batches");
    let mut stats = AssemblyStats {
        elements: plan.elems.len(),
        weighted_ops: plan
            .elems
            .iter()
            .map(|&e| mesh.kinds[e as usize].cost_weight())
            .sum(),
        colors: plan.num_colors(),
        tasks: plan.num_subdomains(),
        ..Default::default()
    };

    let (_pattern, values) = matrix.split_mut();
    match plan.strategy {
        AssemblyStrategy::Serial => {
            let sink = DisjointSink {
                matrix: DisjointView::from_slice(values),
                rhs: rhs.iter_mut().map(|r| DisjointView::from_slice(r)).collect(),
            };
            let mut scratch = ElementScratch::default();
            for set in &sched.units {
                run_set(ctx, set, &mut scratch, &sink);
            }
        }
        AssemblyStrategy::Atomics => {
            let sink = AtomicSink {
                matrix: AtomicView::from_slice(values),
                rhs: rhs.iter_mut().map(|r| AtomicView::from_slice(r)).collect(),
            };
            for set in &sched.units {
                for batch in &set.batches {
                    parallel_for(pool, 0..batch.len(), plan.atomics_grain(), |range| {
                        let mut scratch = ElementScratch::default();
                        ctx.run(batch, range, &mut scratch, &sink);
                    });
                }
            }
            stats.atomic_adds = sink.matrix.atomic_ops.load(Ordering::Relaxed)
                + sink
                    .rhs
                    .iter()
                    .map(|r| r.atomic_ops.load(Ordering::Relaxed))
                    .sum::<usize>();
        }
        AssemblyStrategy::Coloring => {
            let sink = DisjointSink {
                matrix: DisjointView::from_slice(values),
                rhs: rhs.iter_mut().map(|r| DisjointView::from_slice(r)).collect(),
            };
            // One unit per color class; classes stay barriers.
            for set in &sched.units {
                for batch in &set.batches {
                    parallel_for(pool, 0..batch.len(), plan.atomics_grain(), |range| {
                        let mut scratch = ElementScratch::default();
                        ctx.run(batch, range, &mut scratch, &sink);
                    });
                }
            }
        }
        AssemblyStrategy::Multidep => {
            let sink = DisjointSink {
                matrix: DisjointView::from_slice(values),
                rhs: rhs.iter_mut().map(|r| DisjointView::from_slice(r)).collect(),
            };
            let objs = plan.mutex_objs().expect("multidep plan");
            let mut graph = TaskGraph::new();
            for (s, set) in sched.units.iter().enumerate() {
                let deps: Vec<Dep> = objs[s].iter().map(|&o| Dep::mutex(o)).collect();
                let sink = &sink;
                graph.add_task(&deps, move || {
                    let mut scratch = ElementScratch::default();
                    run_set(ctx, set, &mut scratch, sink);
                });
            }
            let exec = graph.execute(pool);
            stats.mutex_retries = exec.mutex_retries;
        }
    }
    stats
}

/// Batched counterpart of [`crate::assembly::assemble_momentum`]; the
/// plan must have been built with [`AssemblyPlan::with_batches`].
#[allow(clippy::too_many_arguments)]
pub fn assemble_momentum_batched(
    pool: &ThreadPool,
    refs: &[RefElement; 3],
    mesh: &Mesh,
    plan: &AssemblyPlan,
    velocity: &[Vec3],
    pressure: &[f64],
    props: FluidProps,
    dt: f64,
    body_force: Vec3,
    matrix: &mut CsrMatrix,
    rhs: &mut [Vec<f64>],
) -> AssemblyStats {
    let ctx = MomentumCtx {
        refs,
        coords: &mesh.coords,
        velocity,
        pressure,
        props,
        dt,
        body_force,
        lanes: plan.lane_kernels,
    };
    assemble_batched(pool, mesh, plan, &ctx, matrix, rhs)
}

/// Batched counterpart of [`crate::assembly::assemble_poisson`].
#[allow(clippy::too_many_arguments)]
pub fn assemble_poisson_batched(
    pool: &ThreadPool,
    refs: &[RefElement; 3],
    mesh: &Mesh,
    plan: &AssemblyPlan,
    velocity: &[Vec3],
    props: FluidProps,
    dt: f64,
    matrix: &mut CsrMatrix,
    rhs: &mut [Vec<f64>],
) -> AssemblyStats {
    let ctx =
        PoissonCtx { refs, coords: &mesh.coords, velocity, props, dt, lanes: plan.lane_kernels };
    assemble_batched(pool, mesh, plan, &ctx, matrix, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::assemble_momentum;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    #[test]
    fn batch_sets_partition_the_element_list() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let mesh = &am.mesh;
        let n2e = mesh.node_to_elements();
        let pattern = CsrMatrix::from_mesh(mesh, &n2e);
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
        let set = BatchSet::build(mesh, &pattern, &elems);
        assert_eq!(set.num_elements(), elems.len());
        let mut seen: Vec<u32> = set.batches.iter().flat_map(|b| b.elems.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, elems);
        for batch in &set.batches {
            assert_eq!(batch.gather.len(), batch.nn() * batch.len());
            assert_eq!(batch.scatter.len(), batch.nn() * batch.nn() * batch.len());
            assert_eq!(batch.h.len(), batch.len());
            assert!(batch.elems.iter().all(|&e| mesh.kinds[e as usize] == batch.kind));
        }
    }

    #[test]
    fn batched_momentum_matches_unbatched_serial() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let mesh = &am.mesh;
        let n2e = mesh.node_to_elements();
        let template = CsrMatrix::from_mesh(mesh, &n2e);
        let refs = RefElement::all();
        let pool = ThreadPool::new(4);
        let velocity: Vec<Vec3> =
            mesh.coords.iter().map(|p| Vec3::new(p.z, -p.x, p.y * 0.5)).collect();
        let zero_p = vec![0.0; mesh.num_nodes()];
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();

        let assemble = |batched: bool, strategy: AssemblyStrategy| {
            let plan = if batched {
                AssemblyPlan::with_batches(mesh, elems.clone(), strategy, 16, &template)
            } else {
                AssemblyPlan::new(mesh, elems.clone(), strategy, 16)
            };
            let mut a = template.clone();
            let mut rhs = vec![vec![0.0; mesh.num_nodes()]; 3];
            let f = if batched { assemble_momentum_batched } else { assemble_momentum };
            f(
                &pool,
                &refs,
                mesh,
                &plan,
                &velocity,
                &zero_p,
                FluidProps::default(),
                1e-4,
                Vec3::new(0.0, 0.0, -9.81),
                &mut a,
                &mut rhs,
            );
            (a, rhs)
        };

        let (a_ref, rhs_ref) = assemble(false, AssemblyStrategy::Serial);
        for strategy in AssemblyStrategy::ALL {
            let (a, rhs) = assemble(true, strategy);
            for (k, (x, y)) in a.values.iter().zip(&a_ref.values).enumerate() {
                let scale = x.abs().max(y.abs()).max(1.0);
                assert!((x - y).abs() <= 1e-9 * scale, "{strategy:?} entry {k}: {x} vs {y}");
            }
            for c in 0..3 {
                for (i, (x, y)) in rhs[c].iter().zip(&rhs_ref[c]).enumerate() {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() <= 1e-9 * scale, "{strategy:?} rhs[{c}][{i}]");
                }
            }
        }
    }

    /// Serial batched assembly with lane kernels must be *bit-identical*
    /// to serial batched assembly with scalar kernels: same per-element
    /// bits (lane-kernel property tests) scattered in the same order.
    #[test]
    fn lane_batched_assembly_bit_identical_to_scalar_batched() {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let mesh = &am.mesh;
        let n2e = mesh.node_to_elements();
        let template = CsrMatrix::from_mesh(mesh, &n2e);
        let refs = RefElement::all();
        let pool = ThreadPool::new(2);
        let velocity: Vec<Vec3> =
            mesh.coords.iter().map(|p| Vec3::new(p.z, -p.x, p.y * 0.5)).collect();
        let pressure: Vec<f64> = mesh.coords.iter().map(|p| p.x * 3.0 - p.y).collect();
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();

        let run = |lanes: bool| {
            let mut plan = AssemblyPlan::with_batches(
                mesh,
                elems.clone(),
                AssemblyStrategy::Serial,
                16,
                &template,
            );
            plan.lane_kernels = lanes;
            let mut a_u = template.clone();
            let mut rhs_u = vec![vec![0.0; mesh.num_nodes()]; 3];
            assemble_momentum_batched(
                &pool,
                &refs,
                mesh,
                &plan,
                &velocity,
                &pressure,
                FluidProps::default(),
                1e-4,
                Vec3::new(0.0, 0.0, -9.81),
                &mut a_u,
                &mut rhs_u,
            );
            let mut a_p = template.clone();
            let mut rhs_p = vec![vec![0.0; mesh.num_nodes()]];
            assemble_poisson_batched(
                &pool,
                &refs,
                mesh,
                &plan,
                &velocity,
                FluidProps::default(),
                1e-4,
                &mut a_p,
                &mut rhs_p,
            );
            (a_u, rhs_u, a_p, rhs_p)
        };

        let (au_s, ru_s, ap_s, rp_s) = run(false);
        let (au_l, ru_l, ap_l, rp_l) = run(true);
        for (k, (x, y)) in au_l.values.iter().zip(&au_s.values).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "momentum entry {k}: {x} vs {y}");
        }
        for c in 0..3 {
            for (i, (x, y)) in ru_l[c].iter().zip(&ru_s[c]).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "momentum rhs[{c}][{i}]");
            }
        }
        for (k, (x, y)) in ap_l.values.iter().zip(&ap_s.values).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "poisson entry {k}");
        }
        for (i, (x, y)) in rp_l[0].iter().zip(&rp_s[0]).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "poisson rhs[{i}]");
        }
    }
}
