//! SELL-C-σ sparse storage for the solver's SpMV hot loop.
//!
//! The committed hotpath numbers show the pressure CG is *latency*
//! bound, not bandwidth bound: after RCM the whole matrix sits in the
//! last-level cache, and the CSR row loop is one long dependent
//! floating-point add chain (`acc += v*x` serializes at FP-add latency,
//! ~4 cycles per nonzero). SELL-C-σ fixes exactly that: rows are packed
//! into chunks of [`SELL_C`] rows stored column-major, so the inner
//! loop advances [`SELL_C`] *independent* accumulator chains at once —
//! the out-of-order core (or the compiler's vector units) overlaps
//! them and the chain latency is hidden.
//!
//! **Bit-identity contract.** Every row's scalar accumulation order is
//! preserved exactly: the chunk's column-major "common" part walks the
//! first `common` entries of each row in CSR order, and the per-row
//! remainder continues sequentially from there. No padding value is
//! ever added into an accumulator (the usual SELL zero-padding can flip
//! the sign of a ±0.0 row sum), so `y` is **bit-identical per row** to
//! [`CsrMatrix::spmv`] — pinned by property tests and by the opt-layout
//! golden.
//!
//! σ-sorting: within windows of [`SELL_SIGMA`] rows, rows are ordered
//! by descending length so chunk-mates have similar lengths and the
//! scalar remainder stays short. Sorting permutes only which *slot*
//! computes which row — each row's own arithmetic is untouched.

use crate::csr::CsrMatrix;

/// Chunk height: number of rows (= independent accumulator chains)
/// processed together. 8 doubles = one AVX-512 register / two NEON-ish
/// quadwords; also enough chains to cover FP-add latency scalar-wise.
pub const SELL_C: usize = 8;

/// Row-sorting window. Must be a multiple of [`SELL_C`]. Small enough
/// that the row permutation stays local (cache-friendly `y` writes),
/// large enough to homogenize chunk row lengths.
pub const SELL_SIGMA: usize = 64;

/// A [`CsrMatrix`] re-shaped into SELL-C-σ form. The structure (built
/// once per sparsity pattern) is separated from the values, which are
/// refreshed from the source CSR with [`SellMatrix::update_values`]
/// whenever the matrix is re-assembled.
#[derive(Debug, Clone)]
pub struct SellMatrix {
    pub n: usize,
    /// Row stored in each slot (`chunk * SELL_C + lane`); `u32::MAX`
    /// marks an empty tail slot.
    rows: Vec<u32>,
    /// Entry offset of each chunk into `cols`/`src`/`vals`.
    chunk_ptr: Vec<u32>,
    /// Column-major ("common") length of each chunk: the shortest row.
    chunk_common: Vec<u32>,
    /// Row length per slot.
    slot_len: Vec<u32>,
    /// Column indices (chunk layout: common part column-major, then the
    /// per-lane remainders contiguous per lane).
    cols: Vec<u32>,
    /// Gather map into the source CSR value array (same layout).
    src: Vec<u32>,
    /// Values (same layout as `cols`).
    vals: Vec<f64>,
}

impl SellMatrix {
    /// Shape the sparsity pattern of `a` into SELL-C-σ and load its
    /// current values.
    pub fn from_csr(a: &CsrMatrix) -> SellMatrix {
        let n = a.n;
        let n_chunks = n.div_ceil(SELL_C);
        // σ-sort: within each window, order rows by descending length
        // (stable, so equal-length rows keep their natural order).
        let mut rows: Vec<u32> = (0..n as u32).collect();
        let row_len = |r: u32| a.row_ptr[r as usize + 1] - a.row_ptr[r as usize];
        for window in rows.chunks_mut(SELL_SIGMA) {
            window.sort_by_key(|&r| std::cmp::Reverse(row_len(r)));
        }
        rows.resize(n_chunks * SELL_C, u32::MAX);

        let mut chunk_ptr = Vec::with_capacity(n_chunks + 1);
        let mut chunk_common = Vec::with_capacity(n_chunks);
        let mut slot_len = vec![0u32; n_chunks * SELL_C];
        let mut cols = Vec::new();
        let mut src = Vec::new();
        chunk_ptr.push(0u32);
        for c in 0..n_chunks {
            let slots = &rows[c * SELL_C..(c + 1) * SELL_C];
            for (l, &r) in slots.iter().enumerate() {
                slot_len[c * SELL_C + l] = if r == u32::MAX { 0 } else { row_len(r) };
            }
            let common =
                (0..SELL_C).map(|l| slot_len[c * SELL_C + l]).min().unwrap_or(0);
            chunk_common.push(common);
            // Common part: column-major over the chunk's lanes. Empty
            // tail slots force common == 0, so no placeholder entries
            // are emitted for them here.
            for k in 0..common {
                for &r in slots {
                    let e = a.row_ptr[r as usize] + k;
                    cols.push(a.col_idx[e as usize]);
                    src.push(e);
                }
            }
            // Remainders: each lane's leftover entries, in CSR order.
            for (l, &r) in slots.iter().enumerate() {
                if r == u32::MAX {
                    continue;
                }
                let lo = a.row_ptr[r as usize] + common;
                let hi = a.row_ptr[r as usize] + slot_len[c * SELL_C + l];
                for e in lo..hi {
                    cols.push(a.col_idx[e as usize]);
                    src.push(e);
                }
            }
            chunk_ptr.push(cols.len() as u32);
        }
        let vals = vec![0.0; src.len()];
        let mut sell = SellMatrix { n, rows, chunk_ptr, chunk_common, slot_len, cols, src, vals };
        sell.update_values(&a.values);
        sell
    }

    /// Refresh the values from the source CSR value array (one gather
    /// pass; the pattern must be the one this structure was built from).
    pub fn update_values(&mut self, csr_values: &[f64]) {
        for (v, &s) in self.vals.iter_mut().zip(&self.src) {
            *v = csr_values[s as usize];
        }
    }

    /// Number of chunks.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.chunk_common.len()
    }

    /// Stored entries (== the source CSR nnz: no padding entries).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// y = A x over the chunk range `lo..hi` (each chunk writes only
    /// its own rows, so disjoint chunk ranges may run concurrently).
    ///
    /// Per row the accumulation order is exactly the CSR entry order,
    /// so each `y[row]` is bit-identical to [`CsrMatrix::spmv`].
    pub fn spmv_chunk_range(&self, lo: usize, hi: usize, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        // SAFETY: exclusive borrow of the full output slice.
        unsafe { self.spmv_chunk_range_ptr(lo, hi, x, y.as_mut_ptr()) }
    }

    /// [`SellMatrix::spmv_chunk_range`] writing through a raw output
    /// pointer, for concurrent sweeps where disjoint chunk ranges own
    /// disjoint rows of `y`.
    ///
    /// # Safety
    /// `y` must be valid for writes at every row index of chunks
    /// `lo..hi`, and no other thread may access those rows concurrently.
    pub unsafe fn spmv_chunk_range_ptr(&self, lo: usize, hi: usize, x: &[f64], y: *mut f64) {
        // Raw pointers in the inner loops: the structure invariants
        // (every `cols` entry < n, every chunk offset < nnz) make the
        // accesses in-bounds, and eliding the checks lets the core
        // pipeline the SELL_C independent chains (or the compiler
        // vectorize them) — the whole point of the layout.
        let vals = self.vals.as_ptr();
        let cols = self.cols.as_ptr();
        let xp = x.as_ptr();
        for c in lo..hi {
            let base = self.chunk_ptr[c] as usize;
            let common = self.chunk_common[c] as usize;
            let mut acc = [0.0f64; SELL_C];
            // Common part: SELL_C independent chains, column-major.
            // SAFETY (both paths): `base + k * SELL_C + l <
            // chunk_ptr[c+1] <= nnz` for `k < common`, and every `cols`
            // entry indexes a valid row of the square matrix.
            #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
            unsafe {
                // One full-width gather + mul + add per column. LLVM's
                // autovectorizer caps AVX-512 codegen at 256 bits on
                // server CPUs (`prefer-256-bit` tuning), so the 8-lane
                // chunk is spelled out explicitly. Lane `l` performs
                // exactly the scalar path's `acc[l] += vals[off+l] *
                // x[cols[off+l]]` — separate IEEE mul and add (never
                // contracted to FMA), same `k` order — so each row's
                // result is bit-identical to the scalar loop below.
                use core::arch::x86_64::*;
                const _: () = assert!(SELL_C == 8, "zmm path assumes 8 lanes");
                let mut av = _mm512_setzero_pd();
                for k in 0..common {
                    let off = base + k * SELL_C;
                    let idx = _mm256_loadu_si256(cols.add(off) as *const __m256i);
                    let xv = _mm512_i32gather_pd::<8>(idx, xp);
                    av = _mm512_add_pd(av, _mm512_mul_pd(_mm512_loadu_pd(vals.add(off)), xv));
                }
                _mm512_storeu_pd(acc.as_mut_ptr(), av);
            }
            #[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
            for k in 0..common {
                let off = base + k * SELL_C;
                for (l, a) in acc.iter_mut().enumerate() {
                    unsafe {
                        let col = *cols.add(off + l) as usize;
                        *a += *vals.add(off + l) * *xp.add(col);
                    }
                }
            }
            // Per-lane remainders, then the row writes.
            let mut off = base + common * SELL_C;
            for (l, &a0) in acc.iter().enumerate() {
                let row = self.rows[c * SELL_C + l];
                if row == u32::MAX {
                    continue;
                }
                let extra = self.slot_len[c * SELL_C + l] as usize - common;
                let mut a = a0;
                for _ in 0..extra {
                    // SAFETY: as above — remainder entries of chunk `c`.
                    unsafe {
                        a += *vals.add(off) * *xp.add(*cols.add(off) as usize);
                    }
                    off += 1;
                }
                unsafe { *y.add(row as usize) = a };
            }
        }
    }

    /// y = A x (serial, whole matrix).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        cfpd_telemetry::count!("solver.sell_spmv_calls");
        self.spmv_chunk_range(0, self.num_chunks(), x, y);
    }

    /// Entry-balanced contiguous chunk ranges for parallel sweeps (the
    /// SELL analogue of [`CsrMatrix::row_chunks`]).
    pub fn chunk_ranges(&self, max_ranges: usize) -> Vec<std::ops::Range<usize>> {
        cfpd_runtime::balanced_ranges(&self.chunk_ptr, max_ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};
    use cfpd_testkit::prop::{self, PropConfig};
    use cfpd_testkit::rng::Rng;

    fn airway_matrix() -> CsrMatrix {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let n2e = am.mesh.node_to_elements();
        let mut a = CsrMatrix::from_mesh(&am.mesh, &n2e);
        let mut rng = Rng::new(0x5e11_c516);
        for v in &mut a.values {
            *v = rng.range_f64(-2.0, 2.0);
        }
        a
    }

    /// Random small CSR matrix with arbitrary (possibly empty) rows.
    fn random_csr(rng: &mut Rng) -> CsrMatrix {
        let n = rng.range_usize(1, 200);
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for _ in 0..n {
            let len = rng.range_usize(0, 12.min(n));
            let mut cols: Vec<u32> =
                (0..len).map(|_| rng.range_usize(0, n) as u32).collect();
            cols.sort_unstable();
            cols.dedup();
            for c in cols {
                col_idx.push(c);
                // Include exact zeros and negative-zero-prone values.
                values.push(match rng.range_usize(0, 5) {
                    0 => 0.0,
                    1 => -0.0,
                    _ => rng.range_f64(-10.0, 10.0),
                });
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix { n, row_ptr, col_idx, values }
    }

    #[test]
    fn sell_structure_accounts_every_entry() {
        let a = airway_matrix();
        let s = SellMatrix::from_csr(&a);
        assert_eq!(s.nnz(), a.nnz(), "SELL must store exactly the CSR entries");
        // Every row appears exactly once among the slots.
        let mut seen = vec![false; a.n];
        for &r in &s.rows {
            if r != u32::MAX {
                assert!(!seen[r as usize], "row {r} stored twice");
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn sell_spmv_bit_identical_to_csr_on_airway() {
        let a = airway_matrix();
        let s = SellMatrix::from_csr(&a);
        let x: Vec<f64> = (0..a.n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_csr = vec![0.0; a.n];
        let mut y_sell = vec![0.0; a.n];
        a.spmv(&x, &mut y_csr);
        s.spmv(&x, &mut y_sell);
        for r in 0..a.n {
            assert_eq!(
                y_sell[r].to_bits(),
                y_csr[r].to_bits(),
                "row {r}: sell {} vs csr {}",
                y_sell[r],
                y_csr[r]
            );
        }
    }

    #[test]
    fn prop_sell_spmv_bit_identical_per_row() {
        prop::check(
            "sell spmv bit-identical per row",
            PropConfig::cases(60),
            &prop::usize_range(0, 1 << 30),
            |&seed| {
                let mut rng = Rng::new(seed as u64);
                let a = random_csr(&mut rng);
                let s = SellMatrix::from_csr(&a);
                let x: Vec<f64> = (0..a.n)
                    .map(|_| match rng.range_usize(0, 6) {
                        0 => 0.0,
                        1 => -0.0,
                        _ => rng.range_f64(-5.0, 5.0),
                    })
                    .collect();
                let mut y_csr = vec![0.0; a.n];
                let mut y_sell = vec![0.0; a.n];
                a.spmv(&x, &mut y_csr);
                s.spmv(&x, &mut y_sell);
                for r in 0..a.n {
                    assert_eq!(
                        y_sell[r].to_bits(),
                        y_csr[r].to_bits(),
                        "row {r}: sell {:?} != csr {:?}",
                        y_sell[r],
                        y_csr[r]
                    );
                }
            },
        );
    }

    #[test]
    fn update_values_tracks_reassembly() {
        let mut a = airway_matrix();
        let mut s = SellMatrix::from_csr(&a);
        // "Reassemble" with different values, refresh, compare again.
        let mut rng = Rng::new(77);
        for v in &mut a.values {
            *v = rng.range_f64(-1.0, 1.0);
        }
        s.update_values(&a.values);
        let x: Vec<f64> = (0..a.n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut y_csr = vec![0.0; a.n];
        let mut y_sell = vec![0.0; a.n];
        a.spmv(&x, &mut y_csr);
        s.spmv(&x, &mut y_sell);
        for r in 0..a.n {
            assert_eq!(y_sell[r].to_bits(), y_csr[r].to_bits(), "row {r}");
        }
    }

    #[test]
    fn chunk_ranges_cover_all_chunks() {
        let a = airway_matrix();
        let s = SellMatrix::from_csr(&a);
        let ranges = s.chunk_ranges(7);
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, s.num_chunks());
    }
}
