//! Pool-parallel sparse kernels: the shared-memory second level of
//! parallelism for the solver phases (Alya's solvers run hybrid too;
//! here they let borrowed DLB cores accelerate the Krylov iterations).
//!
//! Two chunking/fusion ideas live here:
//!
//! * **nnz-balanced row chunks** — [`CsrMatrix::row_chunks`] places
//!   chunk boundaries by binary search on `row_ptr` so every chunk
//!   carries about the same number of nonzeros, instead of the same
//!   number of rows (airway matrices are skewed: boundary-layer nodes
//!   have far denser rows than core nodes).
//! * **fused kernels** — [`spmv_dot_fused`] and [`axpy_dot_fused`] do
//!   the vector update *and* the reduction of the following dot product
//!   in one parallel region, halving the number of passes over the
//!   vectors per CG iteration. Partial sums are written to a
//!   chunk-indexed slot array and summed in chunk order, so the result
//!   depends only on the chunk decomposition — [`cg_fused`] uses a
//!   *fixed* chunk count and is therefore bit-reproducible across pool
//!   sizes.

use crate::csr::CsrMatrix;
use crate::krylov::SolveStats;
use crate::sell::SellMatrix;
use cfpd_runtime::{parallel_dot, parallel_for_ranges, ThreadPool};
use std::cell::UnsafeCell;
use std::ops::Range;

/// Chunk count of the fused CG: fixed (not pool-derived) so the chunked
/// reductions — and hence the whole solve — are bit-identical no matter
/// how many executors DLB has lent us at the moment.
const CG_FUSED_CHUNKS: usize = 64;

/// Disjoint-write shared f64 slots: each index is written by exactly one
/// chunk of a parallel region (output rows of an SpMV, per-chunk partial
/// sums, or range-owned entries of an updated vector).
struct SharedOut<'a>(&'a [UnsafeCell<f64>]);
// SAFETY: callers only touch indices their chunk owns (disjoint ranges).
unsafe impl Sync for SharedOut<'_> {}

impl<'a> SharedOut<'a> {
    fn new(v: &'a mut [f64]) -> SharedOut<'a> {
        SharedOut(unsafe {
            std::slice::from_raw_parts(v.as_mut_ptr() as *const UnsafeCell<f64>, v.len())
        })
    }

    /// # Safety
    /// `i` must be in bounds and owned by the calling chunk for the
    /// whole region.
    #[inline]
    unsafe fn set(&self, i: usize, v: f64) {
        unsafe { *self.0.get_unchecked(i).get() = v };
    }

    /// # Safety
    /// As [`SharedOut::set`]: in bounds, and no other chunk may touch
    /// `i`.
    #[inline]
    unsafe fn get(&self, i: usize) -> f64 {
        unsafe { *self.0.get_unchecked(i).get() }
    }

    /// Base pointer for bulk raw writes (callers must stay within the
    /// indices their chunk owns, as with [`SharedOut::set`]).
    #[inline]
    fn as_mut_ptr(&self) -> *mut f64 {
        self.0.as_ptr() as *mut f64
    }
}

impl CsrMatrix {
    /// At most `max_chunks` contiguous row ranges of ≈ equal nonzero
    /// count (binary search on `row_ptr`), for parallel row sweeps.
    pub fn row_chunks(&self, max_chunks: usize) -> Vec<Range<usize>> {
        cfpd_runtime::balanced_ranges(&self.row_ptr, max_chunks)
    }

    /// y = A x with rows distributed over the pool's active executors,
    /// chunked by nonzero count (not a fixed row grain).
    pub fn spmv_parallel(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        let ranges = self.row_chunks(spmv_chunks(pool));
        self.spmv_parallel_on(pool, &ranges, x, y);
    }

    /// y = A x over a precomputed row-chunk decomposition (compute the
    /// chunks once per solve, not once per SpMV).
    pub fn spmv_parallel_on(
        &self,
        pool: &ThreadPool,
        ranges: &[Range<usize>],
        x: &[f64],
        y: &mut [f64],
    ) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        let out = SharedOut::new(y);
        let out_ref = &out;
        parallel_for_ranges(pool, ranges, |_c, rows| {
            for row in rows {
                let lo = self.row_ptr[row] as usize;
                let hi = self.row_ptr[row + 1] as usize;
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.col_idx[k] as usize];
                }
                // SAFETY: each row belongs to exactly one chunk.
                unsafe { out_ref.set(row, acc) };
            }
        });
    }
}

/// Row-chunk count for stand-alone parallel SpMVs: a few chunks per
/// executor for dynamic balance.
fn spmv_chunks(pool: &ThreadPool) -> usize {
    pool.max_workers().max(1) * 4
}

/// Fused y = A x and xᵀy (e.g. p·Ap of a CG iteration) in one parallel
/// region. Per-chunk partial dots are summed in chunk order, so the
/// returned value depends only on `ranges`, not on thread timing.
pub fn spmv_dot_fused(
    a: &CsrMatrix,
    pool: &ThreadPool,
    ranges: &[Range<usize>],
    x: &[f64],
    y: &mut [f64],
) -> f64 {
    assert_eq!(x.len(), a.n);
    assert_eq!(y.len(), a.n);
    let out = SharedOut::new(y);
    let mut parts = vec![0.0; ranges.len()];
    {
        let parts_out = SharedOut::new(&mut parts);
        let out_ref = &out;
        let parts_ref = &parts_out;
        parallel_for_ranges(pool, ranges, |c, rows| {
            let mut acc = 0.0;
            for row in rows {
                let lo = a.row_ptr[row] as usize;
                let hi = a.row_ptr[row + 1] as usize;
                let mut rowv = 0.0;
                for k in lo..hi {
                    rowv += a.values[k] * x[a.col_idx[k] as usize];
                }
                // SAFETY: each row belongs to exactly one chunk.
                unsafe { out_ref.set(row, rowv) };
                acc += x[row] * rowv;
            }
            // SAFETY: slot `c` belongs to this chunk alone.
            unsafe { parts_ref.set(c, acc) };
        });
    }
    parts.iter().sum()
}

/// y = A x through the SELL-C-σ structure, SELL chunk ranges
/// distributed over the pool. Each SELL chunk writes only its own rows,
/// so disjoint chunk ranges are race-free; every `y[row]` is
/// bit-identical to the CSR SpMV (see [`SellMatrix`]).
pub fn spmv_sell_parallel_on(
    sell: &SellMatrix,
    pool: &ThreadPool,
    sell_ranges: &[Range<usize>],
    x: &[f64],
    y: &mut [f64],
) {
    assert_eq!(x.len(), sell.n);
    assert_eq!(y.len(), sell.n);
    let out = SharedOut::new(y);
    let out_ref = &out;
    parallel_for_ranges(pool, sell_ranges, |_c, chunks| {
        // SAFETY: each SELL chunk owns its rows and chunk ranges are
        // disjoint, so writes through the shared base pointer never
        // alias across the region.
        unsafe { sell.spmv_chunk_range_ptr(chunks.start, chunks.end, x, out_ref.as_mut_ptr()) };
    });
}

/// xᵀy over precomputed row ranges, per-range partials summed in range
/// order — the exact reduction grouping of [`spmv_dot_fused`], split
/// out so a SELL-computed `y` can feed the same deterministic dot.
///
/// Ranges are processed in groups of four, their accumulation chains
/// interleaved in lock-step: each partial is still the plain serial
/// `Σ x[i]·y[i]` over its own range (bit-identical to a per-range
/// loop), but four independent FP-add chains run at once, so the
/// 4-cycle add latency that would otherwise bound a single chain is
/// hidden.
pub fn dot_ranges(pool: &ThreadPool, ranges: &[Range<usize>], x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let mut parts = vec![0.0; ranges.len()];
    let n_groups = ranges.len().div_ceil(4);
    let groups: Vec<Range<usize>> =
        (0..n_groups).map(|g| g * 4..ranges.len().min(g * 4 + 4)).collect();
    {
        let parts_out = SharedOut::new(&mut parts);
        let parts_ref = &parts_out;
        parallel_for_ranges(pool, &groups, |_g, group| {
            let c0 = group.start;
            if group.len() == 4 {
                let (a0, b0) = (&x[ranges[c0].clone()], &y[ranges[c0].clone()]);
                let (a1, b1) = (&x[ranges[c0 + 1].clone()], &y[ranges[c0 + 1].clone()]);
                let (a2, b2) = (&x[ranges[c0 + 2].clone()], &y[ranges[c0 + 2].clone()]);
                let (a3, b3) = (&x[ranges[c0 + 3].clone()], &y[ranges[c0 + 3].clone()]);
                // Lock-step over the common prefix (the balanced ranges
                // are near-equal, so this covers almost everything);
                // re-sliced so the indexing is provably in-bounds.
                let l = a0.len().min(a1.len()).min(a2.len()).min(a3.len());
                let (c_a0, c_b0) = (&a0[..l], &b0[..l]);
                let (c_a1, c_b1) = (&a1[..l], &b1[..l]);
                let (c_a2, c_b2) = (&a2[..l], &b2[..l]);
                let (c_a3, c_b3) = (&a3[..l], &b3[..l]);
                let mut accs = [0.0f64; 4];
                for k in 0..l {
                    accs[0] += c_a0[k] * c_b0[k];
                    accs[1] += c_a1[k] * c_b1[k];
                    accs[2] += c_a2[k] * c_b2[k];
                    accs[3] += c_a3[k] * c_b3[k];
                }
                // Per-range tails continue each chain past the prefix.
                for (s, (a, b)) in
                    [(a0, b0), (a1, b1), (a2, b2), (a3, b3)].into_iter().enumerate()
                {
                    let mut acc = accs[s];
                    for k in l..a.len() {
                        acc += a[k] * b[k];
                    }
                    // SAFETY: slot belongs to this group alone.
                    unsafe { parts_ref.set(c0 + s, acc) };
                }
            } else {
                for c in group {
                    let (a, b) = (&x[ranges[c].clone()], &y[ranges[c].clone()]);
                    let mut acc = 0.0;
                    for k in 0..a.len() {
                        acc += a[k] * b[k];
                    }
                    // SAFETY: slot `c` belongs to this group alone.
                    unsafe { parts_ref.set(c, acc) };
                }
            }
        });
    }
    parts.iter().sum()
}

/// Fused y += α x and yᵀy in one parallel region; deterministic for a
/// fixed `ranges` (chunk-ordered partial sums).
pub fn axpy_dot_fused(
    pool: &ThreadPool,
    ranges: &[Range<usize>],
    alpha: f64,
    x: &[f64],
    y: &mut [f64],
) -> f64 {
    assert_eq!(x.len(), y.len());
    let ys = SharedOut::new(y);
    let mut parts = vec![0.0; ranges.len()];
    {
        let parts_out = SharedOut::new(&mut parts);
        let ys_ref = &ys;
        let parts_ref = &parts_out;
        parallel_for_ranges(pool, ranges, |c, range| {
            let mut acc = 0.0;
            for i in range {
                // SAFETY: chunk ranges are disjoint; `i` is ours.
                let yi = unsafe { ys_ref.get(i) } + alpha * x[i];
                unsafe { ys_ref.set(i, yi) };
                acc += yi * yi;
            }
            // SAFETY: slot `c` belongs to this chunk alone.
            unsafe { parts_ref.set(c, acc) };
        });
    }
    parts.iter().sum()
}

/// Jacobi-preconditioned CG with pool-parallel SpMV and dot products —
/// numerically equivalent to [`crate::krylov::cg`] up to FP reduction
/// order (the dots use the pool's nondeterministic tree reduction; for
/// a bit-reproducible parallel solve use [`cg_fused`]).
pub fn cg_parallel(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    pool: &ThreadPool,
) -> SolveStats {
    let n = a.n;
    let diag = a.diagonal();
    let ranges = a.row_chunks(spmv_chunks(pool));
    let mut r = vec![0.0; n];
    a.spmv_parallel_on(pool, &ranges, x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let b_norm = parallel_dot(pool, b, b).sqrt().max(1e-300);
    let jacobi = |r: &[f64], z: &mut [f64]| {
        for i in 0..r.len() {
            let d = diag[i];
            z[i] = if d.abs() > 1e-300 { r[i] / d } else { r[i] };
        }
    };
    let mut z = vec![0.0; n];
    jacobi(&r, &mut z);
    let mut p = z.clone();
    let mut rz = parallel_dot(pool, &r, &z);
    let mut ap = vec![0.0; n];
    for it in 0..max_iters {
        let res = parallel_dot(pool, &r, &r).sqrt() / b_norm;
        if res < tol {
            return SolveStats { iterations: it, residual: res, converged: true };
        }
        a.spmv_parallel_on(pool, &ranges, &p, &mut ap);
        let pap = parallel_dot(pool, &p, &ap);
        if pap.abs() < 1e-300 {
            return SolveStats { iterations: it, residual: res, converged: false };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        jacobi(&r, &mut z);
        let rz_new = parallel_dot(pool, &r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let res = parallel_dot(pool, &r, &r).sqrt() / b_norm;
    SolveStats { iterations: max_iters, residual: res, converged: res < tol }
}

/// Fused, deterministic, Jacobi-preconditioned parallel CG: the same
/// algorithm as [`crate::krylov::cg`] (same guards, same update order
/// per element) restructured into three fused parallel regions per
/// iteration instead of ~7 separate sweeps:
///
/// 1. `ap = A·p` fused with `p·Ap`,
/// 2. `x += αp`, `r −= α·ap`, `z = D⁻¹r` fused with `r·z` and `r·r`,
/// 3. `p = z + βp`.
///
/// All reductions sum chunk-indexed partials in chunk order over a
/// fixed [`CG_FUSED_CHUNKS`]-way nnz-balanced decomposition, so the
/// result is **bit-identical for any pool size** — residuals differ
/// from the serial reference only by the reduction regrouping
/// (documented tolerance: 1e-12 relative on the residual history).
pub fn cg_fused(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    pool: &ThreadPool,
) -> SolveStats {
    cg_fused_inner(a, None, b, x, tol, max_iters, pool, None)
}

/// [`cg_fused`] with the SpMV routed through a [`SellMatrix`] built from
/// (and value-synced with) `a`. Bit-identical to [`cg_fused`]: the SELL
/// SpMV reproduces every `ap[row]` exactly, and `p·Ap` is reduced with
/// [`dot_ranges`] over the *same* nnz-balanced row decomposition that
/// [`spmv_dot_fused`] uses, so all scalars — and therefore the whole
/// iteration trajectory — carry identical bits.
pub fn cg_fused_sell(
    a: &CsrMatrix,
    sell: &SellMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    pool: &ThreadPool,
) -> SolveStats {
    cg_fused_inner(a, Some(sell), b, x, tol, max_iters, pool, None)
}

/// [`cg_fused`] recording the loop-top relative residual of every
/// iteration (comparable entry-by-entry with
/// [`crate::krylov::cg_with_history`]).
#[allow(clippy::too_many_arguments)]
pub fn cg_fused_history(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    pool: &ThreadPool,
    history: &mut Vec<f64>,
) -> SolveStats {
    cg_fused_inner(a, None, b, x, tol, max_iters, pool, Some(history))
}

#[allow(clippy::too_many_arguments)]
fn cg_fused_inner(
    a: &CsrMatrix,
    sell: Option<&SellMatrix>,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    pool: &ThreadPool,
    mut history: Option<&mut Vec<f64>>,
) -> SolveStats {
    let n = a.n;
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    if let Some(s) = sell {
        assert_eq!(s.n, n);
    }
    let diag = a.diagonal();
    let ranges = a.row_chunks(CG_FUSED_CHUNKS);
    let sell_ranges = sell.map(|s| s.chunk_ranges(CG_FUSED_CHUNKS));
    // b_norm in serial order: bit-identical to the reference CG.
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);

    let mut r = vec![0.0; n];
    match (sell, &sell_ranges) {
        (Some(s), Some(sr)) => spmv_sell_parallel_on(s, pool, sr, x, &mut r),
        _ => a.spmv_parallel_on(pool, &ranges, x, &mut r),
    }
    let mut z = vec![0.0; n];
    let mut p = vec![0.0; n];
    // Init region: r = b − Ax, z = D⁻¹r, p = z, with r·z and r·r.
    let (mut rz, mut rr) = {
        let rs = SharedOut::new(&mut r);
        let zs = SharedOut::new(&mut z);
        let ps = SharedOut::new(&mut p);
        let mut rz_parts = vec![0.0; ranges.len()];
        let mut rr_parts = vec![0.0; ranges.len()];
        {
            let rzp = SharedOut::new(&mut rz_parts);
            let rrp = SharedOut::new(&mut rr_parts);
            let (rs, zs, ps, rzp, rrp) = (&rs, &zs, &ps, &rzp, &rrp);
            parallel_for_ranges(pool, &ranges, |c, range| {
                let mut rz_acc = 0.0;
                let mut rr_acc = 0.0;
                for i in range {
                    // SAFETY: chunk ranges are disjoint; `i` is ours.
                    unsafe {
                        let ri = b[i] - rs.get(i);
                        rs.set(i, ri);
                        let d = diag[i];
                        let zi = if d.abs() > 1e-300 { ri / d } else { ri };
                        zs.set(i, zi);
                        ps.set(i, zi);
                        rz_acc += ri * zi;
                        rr_acc += ri * ri;
                    }
                }
                // SAFETY: slot `c` belongs to this chunk alone.
                unsafe {
                    rzp.set(c, rz_acc);
                    rrp.set(c, rr_acc);
                }
            });
        }
        (rz_parts.iter().sum::<f64>(), rr_parts.iter().sum::<f64>())
    };

    let mut ap = vec![0.0; n];
    for it in 0..max_iters {
        let res = rr.sqrt() / b_norm;
        if let Some(h) = history.as_deref_mut() {
            h.push(res);
        }
        if res < tol {
            return SolveStats { iterations: it, residual: res, converged: true };
        }
        // Region 1: ap = A·p fused with p·Ap. The SELL path computes
        // the same per-row bits and then reduces p·Ap over the same row
        // ranges [`spmv_dot_fused`] groups by, so pap is bit-identical.
        let pap = match (sell, &sell_ranges) {
            (Some(s), Some(sr)) => {
                spmv_sell_parallel_on(s, pool, sr, &p, &mut ap);
                dot_ranges(pool, &ranges, &p, &ap)
            }
            _ => spmv_dot_fused(a, pool, &ranges, &p, &mut ap),
        };
        if pap.abs() < 1e-300 {
            return SolveStats { iterations: it, residual: res, converged: false };
        }
        let alpha = rz / pap;
        // Region 2: solution/residual update + preconditioner + dots.
        let (rz_new, rr_new) = {
            let xs = SharedOut::new(x);
            let rs = SharedOut::new(&mut r);
            let zs = SharedOut::new(&mut z);
            let mut rz_parts = vec![0.0; ranges.len()];
            let mut rr_parts = vec![0.0; ranges.len()];
            {
                let rzp = SharedOut::new(&mut rz_parts);
                let rrp = SharedOut::new(&mut rr_parts);
                let (xs, rs, zs, rzp, rrp) = (&xs, &rs, &zs, &rzp, &rrp);
                let (p, ap) = (&p, &ap);
                parallel_for_ranges(pool, &ranges, |c, range| {
                    let mut rz_acc = 0.0;
                    let mut rr_acc = 0.0;
                    for i in range {
                        // SAFETY: chunk ranges are disjoint; `i` is ours.
                        unsafe {
                            xs.set(i, xs.get(i) + alpha * p[i]);
                            let ri = rs.get(i) - alpha * ap[i];
                            rs.set(i, ri);
                            let d = diag[i];
                            let zi = if d.abs() > 1e-300 { ri / d } else { ri };
                            zs.set(i, zi);
                            rz_acc += ri * zi;
                            rr_acc += ri * ri;
                        }
                    }
                    // SAFETY: slot `c` belongs to this chunk alone.
                    unsafe {
                        rzp.set(c, rz_acc);
                        rrp.set(c, rr_acc);
                    }
                });
            }
            (rz_parts.iter().sum::<f64>(), rr_parts.iter().sum::<f64>())
        };
        let beta = rz_new / rz;
        rz = rz_new;
        rr = rr_new;
        // Region 3: p = z + βp.
        {
            let ps = SharedOut::new(&mut p);
            let ps_ref = &ps;
            let z = &z;
            parallel_for_ranges(pool, &ranges, |_c, range| {
                for i in range {
                    // SAFETY: chunk ranges are disjoint; `i` is ours.
                    unsafe { ps_ref.set(i, z[i] + beta * ps_ref.get(i)) };
                }
            });
        }
    }
    let res = rr.sqrt() / b_norm;
    SolveStats { iterations: max_iters, residual: res, converged: res < tol }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::{cg, cg_with_history};

    fn poisson_1d(n: usize) -> CsrMatrix {
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            if i > 0 {
                col_idx.push((i - 1) as u32);
                values.push(-1.0);
            }
            col_idx.push(i as u32);
            values.push(2.0);
            if i + 1 < n {
                col_idx.push((i + 1) as u32);
                values.push(-1.0);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix { n, row_ptr, col_idx, values }
    }

    #[test]
    fn parallel_spmv_matches_serial() {
        let a = poisson_1d(500);
        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).cos()).collect();
        let mut y_serial = vec![0.0; 500];
        let mut y_par = vec![0.0; 500];
        a.spmv(&x, &mut y_serial);
        let pool = ThreadPool::new(4);
        a.spmv_parallel(&pool, &x, &mut y_par);
        for i in 0..500 {
            assert!((y_serial[i] - y_par[i]).abs() < 1e-14, "row {i}");
        }
    }

    #[test]
    fn row_chunks_cover_all_rows_nnz_balanced() {
        let a = poisson_1d(1000);
        let ranges = a.row_chunks(7);
        assert!(ranges.len() <= 7);
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next);
            next = r.end;
            let nnz = a.row_ptr[r.end] - a.row_ptr[r.start];
            // ~3000 nnz over 7 chunks: every chunk near 1/7 of the load.
            assert!((350..=550).contains(&nnz), "chunk {r:?} has {nnz} nnz");
        }
        assert_eq!(next, 1000);
    }

    #[test]
    fn fused_spmv_dot_matches_serial() {
        let a = poisson_1d(300);
        let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.07).sin()).collect();
        let mut y_ref = vec![0.0; 300];
        a.spmv(&x, &mut y_ref);
        let want: f64 = x.iter().zip(&y_ref).map(|(u, v)| u * v).sum();
        let pool = ThreadPool::new(4);
        let ranges = a.row_chunks(16);
        let mut y = vec![0.0; 300];
        let got = spmv_dot_fused(&a, &pool, &ranges, &x, &mut y);
        for i in 0..300 {
            assert_eq!(y[i].to_bits(), y_ref[i].to_bits(), "row {i} not exact");
        }
        assert!((got - want).abs() <= 1e-12 * want.abs().max(1.0));
    }

    #[test]
    fn fused_axpy_dot_matches_serial() {
        let x: Vec<f64> = (0..257).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut y: Vec<f64> = (0..257).map(|i| 0.5 - (i % 9) as f64 * 0.1).collect();
        let mut y_ref = y.clone();
        for i in 0..257 {
            y_ref[i] += 1.7 * x[i];
        }
        let want: f64 = y_ref.iter().map(|v| v * v).sum();
        let pool = ThreadPool::new(3);
        let prefix: Vec<u32> = (0..=257).map(|i| i as u32).collect();
        let ranges = cfpd_runtime::balanced_ranges(&prefix, 8);
        let got = axpy_dot_fused(&pool, &ranges, 1.7, &x, &mut y);
        for i in 0..257 {
            assert_eq!(y[i].to_bits(), y_ref[i].to_bits(), "y[{i}] not exact");
        }
        assert!((got - want).abs() <= 1e-12 * want.abs().max(1.0));
    }

    #[test]
    fn parallel_cg_matches_serial_solution() {
        let n = 200;
        let a = poisson_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13) % 17) as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let pool = ThreadPool::new(4);
        let mut x_par = vec![0.0; n];
        let s_par = cg_parallel(&a, &b, &mut x_par, 1e-12, 2000, &pool);
        let mut x_ser = vec![0.0; n];
        let s_ser = cg(&a, &b, &mut x_ser, 1e-12, 2000);
        assert!(s_par.converged && s_ser.converged);
        for i in 0..n {
            assert!((x_par[i] - x_true[i]).abs() < 1e-7, "x[{i}]");
        }
        // Similar iteration counts (identical math, different FP order).
        assert!((s_par.iterations as i64 - s_ser.iterations as i64).abs() <= 3);
    }

    #[test]
    fn parallel_cg_respects_shrunk_pool() {
        // Works with a single active executor too (DLB revoked cores).
        let a = poisson_1d(64);
        let b = vec![1.0; 64];
        let pool = ThreadPool::new(4);
        pool.set_active(1);
        let mut x = vec![0.0; 64];
        let s = cg_parallel(&a, &b, &mut x, 1e-10, 500, &pool);
        assert!(s.converged);
    }

    #[test]
    fn fused_cg_tracks_serial_residual_history() {
        let n = 64;
        let a = poisson_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let pool = ThreadPool::new(4);
        let mut x_f = vec![0.0; n];
        let mut h_f = Vec::new();
        let s_f = cg_fused_history(&a, &b, &mut x_f, 1e-10, 2000, &pool, &mut h_f);
        let mut x_s = vec![0.0; n];
        let mut h_s = Vec::new();
        let s_s = cg_with_history(&a, &b, &mut x_s, 1e-10, 2000, Some(&mut h_s));
        assert!(s_f.converged && s_s.converged);
        assert_eq!(h_f.len(), h_s.len(), "iteration counts diverged");
        // Reduction regrouping injects ~1 ulp per iteration, so the
        // admissible divergence grows with the iteration index; past
        // ~100 iterations the two finite-precision trajectories drift
        // apart entirely (Lanczos sensitivity) while still converging
        // to the same solution — the locality_layout integration test
        // pins that behavior on the real airway pressure solve.
        for (it, (f, s)) in h_f.iter().zip(&h_s).enumerate() {
            assert!(
                (f - s).abs() <= 1e-12 * (it + 1) as f64 * s.abs().max(1e-300),
                "iter {it}: fused {f} vs serial {s}"
            );
        }
        for i in 0..n {
            assert!((x_f[i] - x_true[i]).abs() < 1e-6, "x[{i}]");
        }
    }

    #[test]
    fn fused_cg_bit_identical_across_pool_sizes() {
        let n = 333;
        let a = poisson_1d(n);
        let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.3).collect();
        let mut runs = Vec::new();
        for workers in [1usize, 4] {
            let pool = ThreadPool::new(workers);
            let mut x = vec![0.0; n];
            let s = cg_fused(&a, &b, &mut x, 1e-11, 1000, &pool);
            runs.push((x, s));
        }
        let (x1, s1) = &runs[0];
        let (x4, s4) = &runs[1];
        assert_eq!(s1.iterations, s4.iterations);
        assert_eq!(s1.residual.to_bits(), s4.residual.to_bits());
        for i in 0..n {
            assert_eq!(x1[i].to_bits(), x4[i].to_bits(), "x[{i}] differs across pools");
        }
    }

    #[test]
    fn sell_cg_bit_identical_to_fused_cg() {
        let n = 333;
        let a = poisson_1d(n);
        let sell = SellMatrix::from_csr(&a);
        let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.3).collect();
        let pool = ThreadPool::new(4);
        let mut x_csr = vec![0.0; n];
        let s_csr = cg_fused(&a, &b, &mut x_csr, 1e-11, 1000, &pool);
        let mut x_sell = vec![0.0; n];
        let s_sell = cg_fused_sell(&a, &sell, &b, &mut x_sell, 1e-11, 1000, &pool);
        assert_eq!(s_csr.iterations, s_sell.iterations);
        assert_eq!(s_csr.residual.to_bits(), s_sell.residual.to_bits());
        for i in 0..n {
            assert_eq!(x_csr[i].to_bits(), x_sell[i].to_bits(), "x[{i}] differs sell vs csr");
        }
    }

    #[test]
    fn sell_cg_bit_identical_across_pool_sizes() {
        let n = 257;
        let a = poisson_1d(n);
        let sell = SellMatrix::from_csr(&a);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut runs = Vec::new();
        for workers in [1usize, 4] {
            let pool = ThreadPool::new(workers);
            let mut x = vec![0.0; n];
            let s = cg_fused_sell(&a, &sell, &b, &mut x, 1e-11, 1000, &pool);
            runs.push((x, s));
        }
        let (x1, s1) = &runs[0];
        let (x4, s4) = &runs[1];
        assert_eq!(s1.iterations, s4.iterations);
        assert_eq!(s1.residual.to_bits(), s4.residual.to_bits());
        for i in 0..n {
            assert_eq!(x1[i].to_bits(), x4[i].to_bits(), "x[{i}] differs across pools");
        }
    }
}
