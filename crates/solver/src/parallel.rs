//! Pool-parallel sparse kernels: the shared-memory second level of
//! parallelism for the solver phases (Alya's solvers run hybrid too;
//! here they let borrowed DLB cores accelerate the Krylov iterations).

use crate::csr::CsrMatrix;
use crate::krylov::SolveStats;
use cfpd_runtime::{parallel_dot, parallel_for_with_tid, ThreadPool};
use std::cell::UnsafeCell;

/// Row-sliced shared output vector for the parallel SpMV: each row is
/// written by exactly one chunk.
struct RowsOut<'a>(&'a [UnsafeCell<f64>]);
// SAFETY: chunks of `parallel_for` are disjoint row ranges.
unsafe impl Sync for RowsOut<'_> {}

impl RowsOut<'_> {
    /// # Safety
    /// `i` must be written by exactly one thread during the region.
    #[inline]
    unsafe fn set(&self, i: usize, v: f64) {
        unsafe { *self.0[i].get() = v };
    }
}

impl CsrMatrix {
    /// y = A x with rows distributed over the pool's active executors.
    pub fn spmv_parallel(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        let out = RowsOut(unsafe {
            std::slice::from_raw_parts(y.as_mut_ptr() as *const UnsafeCell<f64>, y.len())
        });
        let out_ref = &out;
        parallel_for_with_tid(pool, 0..self.n, 256, |_tid, rows| {
            for row in rows {
                let lo = self.row_ptr[row] as usize;
                let hi = self.row_ptr[row + 1] as usize;
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.col_idx[k] as usize];
                }
                // SAFETY: each row index appears in exactly one chunk.
                unsafe { out_ref.set(row, acc) };
            }
        });
    }
}

/// Jacobi-preconditioned CG with pool-parallel SpMV and dot products —
/// numerically equivalent to [`crate::krylov::cg`] up to FP reduction
/// order.
pub fn cg_parallel(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    pool: &ThreadPool,
) -> SolveStats {
    let n = a.n;
    let diag = a.diagonal();
    let mut r = vec![0.0; n];
    a.spmv_parallel(pool, x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let b_norm = parallel_dot(pool, b, b).sqrt().max(1e-300);
    let jacobi = |r: &[f64], z: &mut [f64]| {
        for i in 0..r.len() {
            let d = diag[i];
            z[i] = if d.abs() > 1e-300 { r[i] / d } else { r[i] };
        }
    };
    let mut z = vec![0.0; n];
    jacobi(&r, &mut z);
    let mut p = z.clone();
    let mut rz = parallel_dot(pool, &r, &z);
    let mut ap = vec![0.0; n];
    for it in 0..max_iters {
        let res = parallel_dot(pool, &r, &r).sqrt() / b_norm;
        if res < tol {
            return SolveStats { iterations: it, residual: res, converged: true };
        }
        a.spmv_parallel(pool, &p, &mut ap);
        let pap = parallel_dot(pool, &p, &ap);
        if pap.abs() < 1e-300 {
            return SolveStats { iterations: it, residual: res, converged: false };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        jacobi(&r, &mut z);
        let rz_new = parallel_dot(pool, &r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let res = parallel_dot(pool, &r, &r).sqrt() / b_norm;
    SolveStats { iterations: max_iters, residual: res, converged: res < tol }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::cg;

    fn poisson_1d(n: usize) -> CsrMatrix {
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            if i > 0 {
                col_idx.push((i - 1) as u32);
                values.push(-1.0);
            }
            col_idx.push(i as u32);
            values.push(2.0);
            if i + 1 < n {
                col_idx.push((i + 1) as u32);
                values.push(-1.0);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix { n, row_ptr, col_idx, values }
    }

    #[test]
    fn parallel_spmv_matches_serial() {
        let a = poisson_1d(500);
        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).cos()).collect();
        let mut y_serial = vec![0.0; 500];
        let mut y_par = vec![0.0; 500];
        a.spmv(&x, &mut y_serial);
        let pool = ThreadPool::new(4);
        a.spmv_parallel(&pool, &x, &mut y_par);
        for i in 0..500 {
            assert!((y_serial[i] - y_par[i]).abs() < 1e-14, "row {i}");
        }
    }

    #[test]
    fn parallel_cg_matches_serial_solution() {
        let n = 200;
        let a = poisson_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13) % 17) as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let pool = ThreadPool::new(4);
        let mut x_par = vec![0.0; n];
        let s_par = cg_parallel(&a, &b, &mut x_par, 1e-12, 2000, &pool);
        let mut x_ser = vec![0.0; n];
        let s_ser = cg(&a, &b, &mut x_ser, 1e-12, 2000);
        assert!(s_par.converged && s_ser.converged);
        for i in 0..n {
            assert!((x_par[i] - x_true[i]).abs() < 1e-7, "x[{i}]");
        }
        // Similar iteration counts (identical math, different FP order).
        assert!((s_par.iterations as i64 - s_ser.iterations as i64).abs() <= 3);
    }

    #[test]
    fn parallel_cg_respects_shrunk_pool() {
        // Works with a single active executor too (DLB revoked cores).
        let a = poisson_1d(64);
        let b = vec![1.0; 64];
        let pool = ThreadPool::new(4);
        pool.set_active(1);
        let mut x = vec![0.0; 64];
        let s = cg_parallel(&a, &b, &mut x, 1e-10, 500, &pool);
        assert!(s.converged);
    }
}
