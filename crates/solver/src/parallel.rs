//! Pool-parallel sparse kernels: the shared-memory second level of
//! parallelism for the solver phases (Alya's solvers run hybrid too;
//! here they let borrowed DLB cores accelerate the Krylov iterations).
//!
//! Two chunking/fusion ideas live here:
//!
//! * **nnz-balanced row chunks** — [`CsrMatrix::row_chunks`] places
//!   chunk boundaries by binary search on `row_ptr` so every chunk
//!   carries about the same number of nonzeros, instead of the same
//!   number of rows (airway matrices are skewed: boundary-layer nodes
//!   have far denser rows than core nodes).
//! * **fused kernels** — [`spmv_dot_fused`] and [`axpy_dot_fused`] do
//!   the vector update *and* the reduction of the following dot product
//!   in one parallel region, halving the number of passes over the
//!   vectors per CG iteration. Partial sums are written to a
//!   chunk-indexed slot array and summed in chunk order, so the result
//!   depends only on the chunk decomposition — [`cg_fused`] uses a
//!   *fixed* chunk count and is therefore bit-reproducible across pool
//!   sizes.

use crate::csr::CsrMatrix;
use crate::krylov::SolveStats;
use cfpd_runtime::{parallel_dot, parallel_for_ranges, ThreadPool};
use std::cell::UnsafeCell;
use std::ops::Range;

/// Chunk count of the fused CG: fixed (not pool-derived) so the chunked
/// reductions — and hence the whole solve — are bit-identical no matter
/// how many executors DLB has lent us at the moment.
const CG_FUSED_CHUNKS: usize = 64;

/// Disjoint-write shared f64 slots: each index is written by exactly one
/// chunk of a parallel region (output rows of an SpMV, per-chunk partial
/// sums, or range-owned entries of an updated vector).
struct SharedOut<'a>(&'a [UnsafeCell<f64>]);
// SAFETY: callers only touch indices their chunk owns (disjoint ranges).
unsafe impl Sync for SharedOut<'_> {}

impl<'a> SharedOut<'a> {
    fn new(v: &'a mut [f64]) -> SharedOut<'a> {
        SharedOut(unsafe {
            std::slice::from_raw_parts(v.as_mut_ptr() as *const UnsafeCell<f64>, v.len())
        })
    }

    /// # Safety
    /// `i` must be in bounds and owned by the calling chunk for the
    /// whole region.
    #[inline]
    unsafe fn set(&self, i: usize, v: f64) {
        unsafe { *self.0.get_unchecked(i).get() = v };
    }

    /// # Safety
    /// As [`SharedOut::set`]: in bounds, and no other chunk may touch
    /// `i`.
    #[inline]
    unsafe fn get(&self, i: usize) -> f64 {
        unsafe { *self.0.get_unchecked(i).get() }
    }
}

impl CsrMatrix {
    /// At most `max_chunks` contiguous row ranges of ≈ equal nonzero
    /// count (binary search on `row_ptr`), for parallel row sweeps.
    pub fn row_chunks(&self, max_chunks: usize) -> Vec<Range<usize>> {
        cfpd_runtime::balanced_ranges(&self.row_ptr, max_chunks)
    }

    /// y = A x with rows distributed over the pool's active executors,
    /// chunked by nonzero count (not a fixed row grain).
    pub fn spmv_parallel(&self, pool: &ThreadPool, x: &[f64], y: &mut [f64]) {
        let ranges = self.row_chunks(spmv_chunks(pool));
        self.spmv_parallel_on(pool, &ranges, x, y);
    }

    /// y = A x over a precomputed row-chunk decomposition (compute the
    /// chunks once per solve, not once per SpMV).
    pub fn spmv_parallel_on(
        &self,
        pool: &ThreadPool,
        ranges: &[Range<usize>],
        x: &[f64],
        y: &mut [f64],
    ) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        let out = SharedOut::new(y);
        let out_ref = &out;
        parallel_for_ranges(pool, ranges, |_c, rows| {
            for row in rows {
                let lo = self.row_ptr[row] as usize;
                let hi = self.row_ptr[row + 1] as usize;
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.values[k] * x[self.col_idx[k] as usize];
                }
                // SAFETY: each row belongs to exactly one chunk.
                unsafe { out_ref.set(row, acc) };
            }
        });
    }
}

/// Row-chunk count for stand-alone parallel SpMVs: a few chunks per
/// executor for dynamic balance.
fn spmv_chunks(pool: &ThreadPool) -> usize {
    pool.max_workers().max(1) * 4
}

/// Fused y = A x and xᵀy (e.g. p·Ap of a CG iteration) in one parallel
/// region. Per-chunk partial dots are summed in chunk order, so the
/// returned value depends only on `ranges`, not on thread timing.
pub fn spmv_dot_fused(
    a: &CsrMatrix,
    pool: &ThreadPool,
    ranges: &[Range<usize>],
    x: &[f64],
    y: &mut [f64],
) -> f64 {
    assert_eq!(x.len(), a.n);
    assert_eq!(y.len(), a.n);
    let out = SharedOut::new(y);
    let mut parts = vec![0.0; ranges.len()];
    {
        let parts_out = SharedOut::new(&mut parts);
        let out_ref = &out;
        let parts_ref = &parts_out;
        parallel_for_ranges(pool, ranges, |c, rows| {
            let mut acc = 0.0;
            for row in rows {
                let lo = a.row_ptr[row] as usize;
                let hi = a.row_ptr[row + 1] as usize;
                let mut rowv = 0.0;
                for k in lo..hi {
                    rowv += a.values[k] * x[a.col_idx[k] as usize];
                }
                // SAFETY: each row belongs to exactly one chunk.
                unsafe { out_ref.set(row, rowv) };
                acc += x[row] * rowv;
            }
            // SAFETY: slot `c` belongs to this chunk alone.
            unsafe { parts_ref.set(c, acc) };
        });
    }
    parts.iter().sum()
}

/// Fused y += α x and yᵀy in one parallel region; deterministic for a
/// fixed `ranges` (chunk-ordered partial sums).
pub fn axpy_dot_fused(
    pool: &ThreadPool,
    ranges: &[Range<usize>],
    alpha: f64,
    x: &[f64],
    y: &mut [f64],
) -> f64 {
    assert_eq!(x.len(), y.len());
    let ys = SharedOut::new(y);
    let mut parts = vec![0.0; ranges.len()];
    {
        let parts_out = SharedOut::new(&mut parts);
        let ys_ref = &ys;
        let parts_ref = &parts_out;
        parallel_for_ranges(pool, ranges, |c, range| {
            let mut acc = 0.0;
            for i in range {
                // SAFETY: chunk ranges are disjoint; `i` is ours.
                let yi = unsafe { ys_ref.get(i) } + alpha * x[i];
                unsafe { ys_ref.set(i, yi) };
                acc += yi * yi;
            }
            // SAFETY: slot `c` belongs to this chunk alone.
            unsafe { parts_ref.set(c, acc) };
        });
    }
    parts.iter().sum()
}

/// Jacobi-preconditioned CG with pool-parallel SpMV and dot products —
/// numerically equivalent to [`crate::krylov::cg`] up to FP reduction
/// order (the dots use the pool's nondeterministic tree reduction; for
/// a bit-reproducible parallel solve use [`cg_fused`]).
pub fn cg_parallel(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    pool: &ThreadPool,
) -> SolveStats {
    let n = a.n;
    let diag = a.diagonal();
    let ranges = a.row_chunks(spmv_chunks(pool));
    let mut r = vec![0.0; n];
    a.spmv_parallel_on(pool, &ranges, x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let b_norm = parallel_dot(pool, b, b).sqrt().max(1e-300);
    let jacobi = |r: &[f64], z: &mut [f64]| {
        for i in 0..r.len() {
            let d = diag[i];
            z[i] = if d.abs() > 1e-300 { r[i] / d } else { r[i] };
        }
    };
    let mut z = vec![0.0; n];
    jacobi(&r, &mut z);
    let mut p = z.clone();
    let mut rz = parallel_dot(pool, &r, &z);
    let mut ap = vec![0.0; n];
    for it in 0..max_iters {
        let res = parallel_dot(pool, &r, &r).sqrt() / b_norm;
        if res < tol {
            return SolveStats { iterations: it, residual: res, converged: true };
        }
        a.spmv_parallel_on(pool, &ranges, &p, &mut ap);
        let pap = parallel_dot(pool, &p, &ap);
        if pap.abs() < 1e-300 {
            return SolveStats { iterations: it, residual: res, converged: false };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        jacobi(&r, &mut z);
        let rz_new = parallel_dot(pool, &r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let res = parallel_dot(pool, &r, &r).sqrt() / b_norm;
    SolveStats { iterations: max_iters, residual: res, converged: res < tol }
}

/// Fused, deterministic, Jacobi-preconditioned parallel CG: the same
/// algorithm as [`crate::krylov::cg`] (same guards, same update order
/// per element) restructured into three fused parallel regions per
/// iteration instead of ~7 separate sweeps:
///
/// 1. `ap = A·p` fused with `p·Ap`,
/// 2. `x += αp`, `r −= α·ap`, `z = D⁻¹r` fused with `r·z` and `r·r`,
/// 3. `p = z + βp`.
///
/// All reductions sum chunk-indexed partials in chunk order over a
/// fixed [`CG_FUSED_CHUNKS`]-way nnz-balanced decomposition, so the
/// result is **bit-identical for any pool size** — residuals differ
/// from the serial reference only by the reduction regrouping
/// (documented tolerance: 1e-12 relative on the residual history).
pub fn cg_fused(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    pool: &ThreadPool,
) -> SolveStats {
    cg_fused_inner(a, b, x, tol, max_iters, pool, None)
}

/// [`cg_fused`] recording the loop-top relative residual of every
/// iteration (comparable entry-by-entry with
/// [`crate::krylov::cg_with_history`]).
#[allow(clippy::too_many_arguments)]
pub fn cg_fused_history(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    pool: &ThreadPool,
    history: &mut Vec<f64>,
) -> SolveStats {
    cg_fused_inner(a, b, x, tol, max_iters, pool, Some(history))
}

#[allow(clippy::too_many_arguments)]
fn cg_fused_inner(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    pool: &ThreadPool,
    mut history: Option<&mut Vec<f64>>,
) -> SolveStats {
    let n = a.n;
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    let diag = a.diagonal();
    let ranges = a.row_chunks(CG_FUSED_CHUNKS);
    // b_norm in serial order: bit-identical to the reference CG.
    let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);

    let mut r = vec![0.0; n];
    a.spmv_parallel_on(pool, &ranges, x, &mut r);
    let mut z = vec![0.0; n];
    let mut p = vec![0.0; n];
    // Init region: r = b − Ax, z = D⁻¹r, p = z, with r·z and r·r.
    let (mut rz, mut rr) = {
        let rs = SharedOut::new(&mut r);
        let zs = SharedOut::new(&mut z);
        let ps = SharedOut::new(&mut p);
        let mut rz_parts = vec![0.0; ranges.len()];
        let mut rr_parts = vec![0.0; ranges.len()];
        {
            let rzp = SharedOut::new(&mut rz_parts);
            let rrp = SharedOut::new(&mut rr_parts);
            let (rs, zs, ps, rzp, rrp) = (&rs, &zs, &ps, &rzp, &rrp);
            parallel_for_ranges(pool, &ranges, |c, range| {
                let mut rz_acc = 0.0;
                let mut rr_acc = 0.0;
                for i in range {
                    // SAFETY: chunk ranges are disjoint; `i` is ours.
                    unsafe {
                        let ri = b[i] - rs.get(i);
                        rs.set(i, ri);
                        let d = diag[i];
                        let zi = if d.abs() > 1e-300 { ri / d } else { ri };
                        zs.set(i, zi);
                        ps.set(i, zi);
                        rz_acc += ri * zi;
                        rr_acc += ri * ri;
                    }
                }
                // SAFETY: slot `c` belongs to this chunk alone.
                unsafe {
                    rzp.set(c, rz_acc);
                    rrp.set(c, rr_acc);
                }
            });
        }
        (rz_parts.iter().sum::<f64>(), rr_parts.iter().sum::<f64>())
    };

    let mut ap = vec![0.0; n];
    for it in 0..max_iters {
        let res = rr.sqrt() / b_norm;
        if let Some(h) = history.as_deref_mut() {
            h.push(res);
        }
        if res < tol {
            return SolveStats { iterations: it, residual: res, converged: true };
        }
        // Region 1: ap = A·p fused with p·Ap.
        let pap = spmv_dot_fused(a, pool, &ranges, &p, &mut ap);
        if pap.abs() < 1e-300 {
            return SolveStats { iterations: it, residual: res, converged: false };
        }
        let alpha = rz / pap;
        // Region 2: solution/residual update + preconditioner + dots.
        let (rz_new, rr_new) = {
            let xs = SharedOut::new(x);
            let rs = SharedOut::new(&mut r);
            let zs = SharedOut::new(&mut z);
            let mut rz_parts = vec![0.0; ranges.len()];
            let mut rr_parts = vec![0.0; ranges.len()];
            {
                let rzp = SharedOut::new(&mut rz_parts);
                let rrp = SharedOut::new(&mut rr_parts);
                let (xs, rs, zs, rzp, rrp) = (&xs, &rs, &zs, &rzp, &rrp);
                let (p, ap) = (&p, &ap);
                parallel_for_ranges(pool, &ranges, |c, range| {
                    let mut rz_acc = 0.0;
                    let mut rr_acc = 0.0;
                    for i in range {
                        // SAFETY: chunk ranges are disjoint; `i` is ours.
                        unsafe {
                            xs.set(i, xs.get(i) + alpha * p[i]);
                            let ri = rs.get(i) - alpha * ap[i];
                            rs.set(i, ri);
                            let d = diag[i];
                            let zi = if d.abs() > 1e-300 { ri / d } else { ri };
                            zs.set(i, zi);
                            rz_acc += ri * zi;
                            rr_acc += ri * ri;
                        }
                    }
                    // SAFETY: slot `c` belongs to this chunk alone.
                    unsafe {
                        rzp.set(c, rz_acc);
                        rrp.set(c, rr_acc);
                    }
                });
            }
            (rz_parts.iter().sum::<f64>(), rr_parts.iter().sum::<f64>())
        };
        let beta = rz_new / rz;
        rz = rz_new;
        rr = rr_new;
        // Region 3: p = z + βp.
        {
            let ps = SharedOut::new(&mut p);
            let ps_ref = &ps;
            let z = &z;
            parallel_for_ranges(pool, &ranges, |_c, range| {
                for i in range {
                    // SAFETY: chunk ranges are disjoint; `i` is ours.
                    unsafe { ps_ref.set(i, z[i] + beta * ps_ref.get(i)) };
                }
            });
        }
    }
    let res = rr.sqrt() / b_norm;
    SolveStats { iterations: max_iters, residual: res, converged: res < tol }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::{cg, cg_with_history};

    fn poisson_1d(n: usize) -> CsrMatrix {
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            if i > 0 {
                col_idx.push((i - 1) as u32);
                values.push(-1.0);
            }
            col_idx.push(i as u32);
            values.push(2.0);
            if i + 1 < n {
                col_idx.push((i + 1) as u32);
                values.push(-1.0);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix { n, row_ptr, col_idx, values }
    }

    #[test]
    fn parallel_spmv_matches_serial() {
        let a = poisson_1d(500);
        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).cos()).collect();
        let mut y_serial = vec![0.0; 500];
        let mut y_par = vec![0.0; 500];
        a.spmv(&x, &mut y_serial);
        let pool = ThreadPool::new(4);
        a.spmv_parallel(&pool, &x, &mut y_par);
        for i in 0..500 {
            assert!((y_serial[i] - y_par[i]).abs() < 1e-14, "row {i}");
        }
    }

    #[test]
    fn row_chunks_cover_all_rows_nnz_balanced() {
        let a = poisson_1d(1000);
        let ranges = a.row_chunks(7);
        assert!(ranges.len() <= 7);
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next);
            next = r.end;
            let nnz = a.row_ptr[r.end] - a.row_ptr[r.start];
            // ~3000 nnz over 7 chunks: every chunk near 1/7 of the load.
            assert!((350..=550).contains(&nnz), "chunk {r:?} has {nnz} nnz");
        }
        assert_eq!(next, 1000);
    }

    #[test]
    fn fused_spmv_dot_matches_serial() {
        let a = poisson_1d(300);
        let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.07).sin()).collect();
        let mut y_ref = vec![0.0; 300];
        a.spmv(&x, &mut y_ref);
        let want: f64 = x.iter().zip(&y_ref).map(|(u, v)| u * v).sum();
        let pool = ThreadPool::new(4);
        let ranges = a.row_chunks(16);
        let mut y = vec![0.0; 300];
        let got = spmv_dot_fused(&a, &pool, &ranges, &x, &mut y);
        for i in 0..300 {
            assert_eq!(y[i].to_bits(), y_ref[i].to_bits(), "row {i} not exact");
        }
        assert!((got - want).abs() <= 1e-12 * want.abs().max(1.0));
    }

    #[test]
    fn fused_axpy_dot_matches_serial() {
        let x: Vec<f64> = (0..257).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut y: Vec<f64> = (0..257).map(|i| 0.5 - (i % 9) as f64 * 0.1).collect();
        let mut y_ref = y.clone();
        for i in 0..257 {
            y_ref[i] += 1.7 * x[i];
        }
        let want: f64 = y_ref.iter().map(|v| v * v).sum();
        let pool = ThreadPool::new(3);
        let prefix: Vec<u32> = (0..=257).map(|i| i as u32).collect();
        let ranges = cfpd_runtime::balanced_ranges(&prefix, 8);
        let got = axpy_dot_fused(&pool, &ranges, 1.7, &x, &mut y);
        for i in 0..257 {
            assert_eq!(y[i].to_bits(), y_ref[i].to_bits(), "y[{i}] not exact");
        }
        assert!((got - want).abs() <= 1e-12 * want.abs().max(1.0));
    }

    #[test]
    fn parallel_cg_matches_serial_solution() {
        let n = 200;
        let a = poisson_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13) % 17) as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let pool = ThreadPool::new(4);
        let mut x_par = vec![0.0; n];
        let s_par = cg_parallel(&a, &b, &mut x_par, 1e-12, 2000, &pool);
        let mut x_ser = vec![0.0; n];
        let s_ser = cg(&a, &b, &mut x_ser, 1e-12, 2000);
        assert!(s_par.converged && s_ser.converged);
        for i in 0..n {
            assert!((x_par[i] - x_true[i]).abs() < 1e-7, "x[{i}]");
        }
        // Similar iteration counts (identical math, different FP order).
        assert!((s_par.iterations as i64 - s_ser.iterations as i64).abs() <= 3);
    }

    #[test]
    fn parallel_cg_respects_shrunk_pool() {
        // Works with a single active executor too (DLB revoked cores).
        let a = poisson_1d(64);
        let b = vec![1.0; 64];
        let pool = ThreadPool::new(4);
        pool.set_active(1);
        let mut x = vec![0.0; 64];
        let s = cg_parallel(&a, &b, &mut x, 1e-10, 500, &pool);
        assert!(s.converged);
    }

    #[test]
    fn fused_cg_tracks_serial_residual_history() {
        let n = 64;
        let a = poisson_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let pool = ThreadPool::new(4);
        let mut x_f = vec![0.0; n];
        let mut h_f = Vec::new();
        let s_f = cg_fused_history(&a, &b, &mut x_f, 1e-10, 2000, &pool, &mut h_f);
        let mut x_s = vec![0.0; n];
        let mut h_s = Vec::new();
        let s_s = cg_with_history(&a, &b, &mut x_s, 1e-10, 2000, Some(&mut h_s));
        assert!(s_f.converged && s_s.converged);
        assert_eq!(h_f.len(), h_s.len(), "iteration counts diverged");
        // Reduction regrouping injects ~1 ulp per iteration, so the
        // admissible divergence grows with the iteration index; past
        // ~100 iterations the two finite-precision trajectories drift
        // apart entirely (Lanczos sensitivity) while still converging
        // to the same solution — the locality_layout integration test
        // pins that behavior on the real airway pressure solve.
        for (it, (f, s)) in h_f.iter().zip(&h_s).enumerate() {
            assert!(
                (f - s).abs() <= 1e-12 * (it + 1) as f64 * s.abs().max(1e-300),
                "iter {it}: fused {f} vs serial {s}"
            );
        }
        for i in 0..n {
            assert!((x_f[i] - x_true[i]).abs() < 1e-6, "x[{i}]");
        }
    }

    #[test]
    fn fused_cg_bit_identical_across_pool_sizes() {
        let n = 333;
        let a = poisson_1d(n);
        let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.3).collect();
        let mut runs = Vec::new();
        for workers in [1usize, 4] {
            let pool = ThreadPool::new(workers);
            let mut x = vec![0.0; n];
            let s = cg_fused(&a, &b, &mut x, 1e-11, 1000, &pool);
            runs.push((x, s));
        }
        let (x1, s1) = &runs[0];
        let (x4, s4) = &runs[1];
        assert_eq!(s1.iterations, s4.iterations);
        assert_eq!(s1.residual.to_bits(), s4.residual.to_bits());
        for i in 0..n {
            assert_eq!(x1[i].to_bits(), x4[i].to_bits(), "x[{i}] differs across pools");
        }
    }
}
