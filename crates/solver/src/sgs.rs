//! The subgrid-scale (SGS) phase driver: a per-element loop with **no
//! global scatter** — the paper uses it to measure the pure scheduling
//! overhead of coloring and multidependences when no race protection is
//! needed at all (§4.3, Fig. 7).

use crate::assembly::{AssemblyPlan, AssemblyStrategy};
use crate::kernels::{sgs_kernel, ElementScratch, FluidProps};
use crate::shape::RefElement;
use cfpd_mesh::{Mesh, Vec3};
use cfpd_runtime::{
    balanced_ranges, parallel_for, parallel_for_ranges, prefix_weights, Dep, TaskGraph, ThreadPool,
};
use std::cell::UnsafeCell;

/// Per-element, per-quadrature-point subgrid velocity storage.
#[derive(Debug)]
pub struct SgsField {
    /// Flattened per-qp subgrid velocities.
    pub values: Vec<Vec3>,
    /// CSR offsets: element `e` owns `values[offsets[e]..offsets[e+1]]`.
    pub offsets: Vec<u32>,
    /// Characteristic element length (cbrt of volume), cached.
    pub h: Vec<f64>,
}

impl SgsField {
    pub fn new(mesh: &Mesh) -> SgsField {
        let ne = mesh.num_elements();
        let mut offsets = Vec::with_capacity(ne + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for e in 0..ne {
            total += mesh.kinds[e].num_quad_points() as u32;
            offsets.push(total);
        }
        let h = (0..ne).map(|e| mesh.volume(e).abs().cbrt()).collect();
        SgsField { values: vec![Vec3::ZERO; total as usize], offsets, h }
    }

    /// Subgrid velocities of element `e`.
    pub fn elem(&self, e: usize) -> &[Vec3] {
        &self.values[self.offsets[e] as usize..self.offsets[e + 1] as usize]
    }

    /// Mean subgrid-velocity magnitude (diagnostic).
    pub fn mean_norm(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().map(|v| v.norm()).sum::<f64>() / self.values.len() as f64
    }
}

/// Shared view over the SGS storage allowing each element's slice to be
/// written by the thread processing that element.
struct SgsView<'a> {
    values: &'a [UnsafeCell<Vec3>],
}
// SAFETY: every element's range is written by exactly one task/iteration
// (ranges are disjoint per element).
unsafe impl Sync for SgsView<'_> {}

impl<'a> SgsView<'a> {
    fn new(values: &'a mut [Vec3]) -> SgsView<'a> {
        let ptr = values.as_mut_ptr() as *const UnsafeCell<Vec3>;
        // SAFETY: identical layout; exclusivity per element range.
        SgsView { values: unsafe { std::slice::from_raw_parts(ptr, values.len()) } }
    }

    /// # Safety
    /// The caller must be the only accessor of `lo..hi` for the duration
    /// of the borrow.
    #[allow(clippy::mut_from_ref)]
    unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [Vec3] {
        unsafe {
            std::slice::from_raw_parts_mut(self.values[lo].get(), hi - lo)
        }
    }
}

/// Result of one SGS sweep: per-element inner-iteration counts (a cost
/// profile — elements in sheared flow iterate more, one of the organic
/// imbalance sources) and the weighted total work.
#[derive(Debug, Default, Clone)]
pub struct SgsStats {
    pub elements: usize,
    pub total_iterations: u64,
    pub max_iterations: usize,
}

/// Run one SGS update sweep over `plan.elems` with the plan's strategy.
/// All strategies are race-free here by construction (per-element
/// storage) — exactly why the paper uses this phase to isolate the
/// scheduling overhead of coloring/multidependences.
#[allow(clippy::too_many_arguments)]
pub fn compute_sgs(
    pool: &ThreadPool,
    refs: &[RefElement; 3],
    mesh: &Mesh,
    plan: &AssemblyPlan,
    velocity: &[Vec3],
    props: FluidProps,
    field: &mut SgsField,
    max_iters: usize,
    tol: f64,
) -> SgsStats {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    let offsets = field.offsets.clone();
    let h = field.h.clone();
    let view = SgsView::new(&mut field.values);
    let total_iters = AtomicU64::new(0);
    let max_seen = AtomicUsize::new(0);

    let process = |scratch: &mut ElementScratch, e: usize| {
        let (kind, nn) = scratch.load(mesh, velocity, e);
        let lo = offsets[e] as usize;
        let hi = offsets[e + 1] as usize;
        // SAFETY: element ranges are disjoint; each element is processed
        // by exactly one executor per sweep.
        let slice = unsafe { view.range_mut(lo, hi) };
        let iters = sgs_kernel(refs, scratch, kind, nn, props, h[e], slice, max_iters, tol);
        total_iters.fetch_add(iters as u64, Ordering::Relaxed);
        max_seen.fetch_max(iters, Ordering::Relaxed);
    };

    match plan.strategy {
        AssemblyStrategy::Serial => {
            let mut scratch = ElementScratch::default();
            for &e in &plan.elems {
                process(&mut scratch, e as usize);
            }
        }
        AssemblyStrategy::Atomics => {
            // "Atomics" SGS is just a plain parallel loop — no shared
            // update exists, so no atomic is emitted (paper §4.3).
            // Chunked by quadrature-point count, not element count:
            // boundary-layer prisms carry more qps (and more inner
            // iterations) than core tets.
            let elems = &plan.elems;
            let prefix = prefix_weights(elems.len(), |k| {
                mesh.kinds[elems[k] as usize].num_quad_points() as u32
            });
            let ranges = balanced_ranges(&prefix, pool.max_workers().max(1) * 8);
            parallel_for_ranges(pool, &ranges, |_c, range| {
                let mut scratch = ElementScratch::default();
                for k in range {
                    process(&mut scratch, elems[k] as usize);
                }
            });
        }
        AssemblyStrategy::Coloring => {
            // Pointless for SGS but measured to expose its overhead.
            let classes: Vec<Vec<u32>> = {
                // Reuse the plan's classes if built for Coloring.
                let weights: Vec<f64> =
                    plan.elems.iter().map(|&e| mesh.kinds[e as usize].cost_weight()).collect();
                let g = cfpd_partition::local_element_graph(mesh, &plan.elems, &weights);
                cfpd_partition::greedy_coloring(&g)
                    .color_classes()
                    .into_iter()
                    .map(|c| c.into_iter().map(|li| plan.elems[li as usize]).collect())
                    .collect()
            };
            for class in &classes {
                parallel_for(pool, 0..class.len(), 32, |range| {
                    let mut scratch = ElementScratch::default();
                    for k in range {
                        process(&mut scratch, class[k] as usize);
                    }
                });
            }
        }
        AssemblyStrategy::Multidep => {
            let weights: Vec<f64> =
                plan.elems.iter().map(|&e| mesh.kinds[e as usize].cost_weight()).collect();
            let n_sub = plan.num_subdomains().max(pool.max_workers() * 4);
            let d = cfpd_partition::decompose_subdomains(mesh, &plan.elems, &weights, n_sub);
            let mut graph = TaskGraph::new();
            for (s, members) in d.members.iter().enumerate() {
                let deps: Vec<Dep> =
                    d.adjacency[s].iter().map(|&t| {
                        let key = if (s as u32) < t { (s as u32, t) } else { (t, s as u32) };
                        Dep::mutex((key.0 as usize) * d.members.len() + key.1 as usize)
                    }).collect();
                let process = &process;
                graph.add_task(&deps, move || {
                    let mut scratch = ElementScratch::default();
                    for &e in members {
                        process(&mut scratch, e as usize);
                    }
                });
            }
            graph.execute(pool);
        }
    }

    SgsStats {
        elements: plan.elems.len(),
        total_iterations: total_iters.load(Ordering::Relaxed),
        max_iterations: max_seen.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    fn fixture() -> (Mesh, [RefElement; 3], ThreadPool, Vec<Vec3>) {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let vel = am
            .mesh
            .coords
            .iter()
            .map(|p| Vec3::new(p.y * 20.0, -p.x * 10.0, 1.0))
            .collect();
        (am.mesh, RefElement::all(), ThreadPool::new(4), vel)
    }

    fn run(strategy: AssemblyStrategy) -> (SgsField, SgsStats) {
        let (mesh, refs, pool, vel) = fixture();
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
        let plan = AssemblyPlan::new(&mesh, elems, strategy, 16);
        let mut field = SgsField::new(&mesh);
        let stats = compute_sgs(
            &pool,
            &refs,
            &mesh,
            &plan,
            &vel,
            FluidProps::default(),
            &mut field,
            10,
            1e-8,
        );
        (field, stats)
    }

    #[test]
    fn sgs_storage_sized_by_quadrature() {
        let (mesh, ..) = fixture();
        let field = SgsField::new(&mesh);
        let expected: usize = (0..mesh.num_elements())
            .map(|e| mesh.kinds[e].num_quad_points())
            .sum();
        assert_eq!(field.values.len(), expected);
    }

    #[test]
    fn all_strategies_compute_same_sgs() {
        let (reference, _) = run(AssemblyStrategy::Serial);
        for s in [AssemblyStrategy::Atomics, AssemblyStrategy::Coloring, AssemblyStrategy::Multidep]
        {
            let (field, stats) = run(s);
            assert_eq!(stats.elements, reference.offsets.len() - 1);
            for (i, (a, b)) in field.values.iter().zip(&reference.values).enumerate() {
                assert!(
                    (*a - *b).norm() < 1e-12,
                    "{s:?} sgs[{i}] differs: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn rotational_flow_produces_nonzero_sgs() {
        let (field, stats) = run(AssemblyStrategy::Atomics);
        assert!(field.mean_norm() > 0.0);
        assert!(stats.total_iterations as usize >= stats.elements);
        assert!(stats.max_iterations >= 1);
    }
}
