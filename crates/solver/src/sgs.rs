//! The subgrid-scale (SGS) phase driver: a per-element loop with **no
//! global scatter** — the paper uses it to measure the pure scheduling
//! overhead of coloring and multidependences when no race protection is
//! needed at all (§4.3, Fig. 7).

use crate::assembly::{AssemblyPlan, AssemblyStrategy};
use crate::kernels::{sgs_kernel, sgs_kernel_on, ElementScratch, FluidProps};
use crate::shape::RefElement;
use cfpd_mesh::{ElementKind, Mesh, Vec3};
use cfpd_runtime::{
    balanced_ranges, parallel_for, parallel_for_ranges, prefix_weights, Dep, TaskGraph, ThreadPool,
};
use std::cell::UnsafeCell;

/// One same-kind batch of the cached SGS sweep schedule: element ids,
/// a flattened gather list (no `elem_nodes` dispatch in the hot loop),
/// and a quadrature-count prefix for work-balanced chunking.
#[derive(Debug)]
pub struct SgsKindBatch {
    pub kind: ElementKind,
    /// Global element ids, in sweep order.
    pub elems: Vec<u32>,
    /// Flattened gather list: batch row `b` reads nodes
    /// `gather[b*nn .. (b+1)*nn]`.
    pub gather: Vec<u32>,
    /// Quadrature-point prefix weights over `elems` (for
    /// [`balanced_ranges`]).
    pub qp_prefix: Vec<u32>,
}

/// Per-element, per-quadrature-point subgrid velocity storage.
#[derive(Debug)]
pub struct SgsField {
    /// Flattened per-qp subgrid velocities.
    pub values: Vec<Vec3>,
    /// CSR offsets: element `e` owns `values[offsets[e]..offsets[e+1]]`.
    pub offsets: Vec<u32>,
    /// Characteristic element length (cbrt of volume), cached.
    pub h: Vec<f64>,
    /// Kind-batched sweep schedule, built lazily by
    /// [`SgsField::ensure_batches`] (the `batched_sgs` layout path).
    batches: Option<Vec<SgsKindBatch>>,
}

impl SgsField {
    pub fn new(mesh: &Mesh) -> SgsField {
        let ne = mesh.num_elements();
        let mut offsets = Vec::with_capacity(ne + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for e in 0..ne {
            total += mesh.kinds[e].num_quad_points() as u32;
            offsets.push(total);
        }
        let h = (0..ne).map(|e| mesh.volume(e).abs().cbrt()).collect();
        SgsField { values: vec![Vec3::ZERO; total as usize], offsets, h, batches: None }
    }

    /// Build (once) and return the kind-batched sweep schedule over
    /// `elems`. Elements are grouped `Tet4 → Pyr5 → Pri6`, stable
    /// within each kind; SGS elements are mutually independent, so the
    /// regrouped sweep computes bit-identical per-element results.
    pub fn ensure_batches(&mut self, mesh: &Mesh, elems: &[u32]) -> &[SgsKindBatch] {
        if self.batches.is_none() {
            let mut batches = Vec::new();
            for kind in [ElementKind::Tet4, ElementKind::Pyr5, ElementKind::Pri6] {
                let members: Vec<u32> = elems
                    .iter()
                    .copied()
                    .filter(|&e| mesh.kinds[e as usize] == kind)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let nn = kind.num_nodes();
                let qpw = kind.num_quad_points() as u32;
                let mut gather = Vec::with_capacity(nn * members.len());
                let mut qp_prefix = Vec::with_capacity(members.len() + 1);
                qp_prefix.push(0u32);
                for &e in &members {
                    gather.extend_from_slice(mesh.elem_nodes(e as usize));
                    qp_prefix.push(qp_prefix.last().unwrap() + qpw);
                }
                batches.push(SgsKindBatch { kind, elems: members, gather, qp_prefix });
            }
            self.batches = Some(batches);
        }
        self.batches.as_deref().unwrap()
    }

    /// Subgrid velocities of element `e`.
    pub fn elem(&self, e: usize) -> &[Vec3] {
        &self.values[self.offsets[e] as usize..self.offsets[e + 1] as usize]
    }

    /// Mean subgrid-velocity magnitude (diagnostic).
    pub fn mean_norm(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().map(|v| v.norm()).sum::<f64>() / self.values.len() as f64
    }
}

/// Shared view over the SGS storage allowing each element's slice to be
/// written by the thread processing that element.
struct SgsView<'a> {
    values: &'a [UnsafeCell<Vec3>],
}
// SAFETY: every element's range is written by exactly one task/iteration
// (ranges are disjoint per element).
unsafe impl Sync for SgsView<'_> {}

impl<'a> SgsView<'a> {
    fn new(values: &'a mut [Vec3]) -> SgsView<'a> {
        let ptr = values.as_mut_ptr() as *const UnsafeCell<Vec3>;
        // SAFETY: identical layout; exclusivity per element range.
        SgsView { values: unsafe { std::slice::from_raw_parts(ptr, values.len()) } }
    }

    /// # Safety
    /// The caller must be the only accessor of `lo..hi` for the duration
    /// of the borrow.
    #[allow(clippy::mut_from_ref)]
    unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [Vec3] {
        unsafe {
            std::slice::from_raw_parts_mut(self.values[lo].get(), hi - lo)
        }
    }
}

/// Result of one SGS sweep: per-element inner-iteration counts (a cost
/// profile — elements in sheared flow iterate more, one of the organic
/// imbalance sources) and the weighted total work.
#[derive(Debug, Default, Clone)]
pub struct SgsStats {
    pub elements: usize,
    pub total_iterations: u64,
    pub max_iterations: usize,
}

/// Run one SGS update sweep over `plan.elems` with the plan's strategy.
/// All strategies are race-free here by construction (per-element
/// storage) — exactly why the paper uses this phase to isolate the
/// scheduling overhead of coloring/multidependences.
#[allow(clippy::too_many_arguments)]
pub fn compute_sgs(
    pool: &ThreadPool,
    refs: &[RefElement; 3],
    mesh: &Mesh,
    plan: &AssemblyPlan,
    velocity: &[Vec3],
    props: FluidProps,
    field: &mut SgsField,
    max_iters: usize,
    tol: f64,
) -> SgsStats {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    if plan.batched_sgs {
        return compute_sgs_batched(pool, refs, mesh, plan, velocity, props, field, max_iters, tol);
    }
    let offsets = field.offsets.clone();
    let h = field.h.clone();
    let view = SgsView::new(&mut field.values);
    let total_iters = AtomicU64::new(0);
    let max_seen = AtomicUsize::new(0);

    let process = |scratch: &mut ElementScratch, e: usize| {
        let (kind, nn) = scratch.load(mesh, velocity, e);
        let lo = offsets[e] as usize;
        let hi = offsets[e + 1] as usize;
        // SAFETY: element ranges are disjoint; each element is processed
        // by exactly one executor per sweep.
        let slice = unsafe { view.range_mut(lo, hi) };
        let iters = sgs_kernel(refs, scratch, kind, nn, props, h[e], slice, max_iters, tol);
        total_iters.fetch_add(iters as u64, Ordering::Relaxed);
        max_seen.fetch_max(iters, Ordering::Relaxed);
    };

    match plan.strategy {
        AssemblyStrategy::Serial => {
            let mut scratch = ElementScratch::default();
            for &e in &plan.elems {
                process(&mut scratch, e as usize);
            }
        }
        AssemblyStrategy::Atomics => {
            // "Atomics" SGS is just a plain parallel loop — no shared
            // update exists, so no atomic is emitted (paper §4.3).
            // Chunked by quadrature-point count, not element count:
            // boundary-layer prisms carry more qps (and more inner
            // iterations) than core tets.
            let elems = &plan.elems;
            let prefix = prefix_weights(elems.len(), |k| {
                mesh.kinds[elems[k] as usize].num_quad_points() as u32
            });
            let ranges = balanced_ranges(&prefix, pool.max_workers().max(1) * 8);
            parallel_for_ranges(pool, &ranges, |_c, range| {
                let mut scratch = ElementScratch::default();
                for k in range {
                    process(&mut scratch, elems[k] as usize);
                }
            });
        }
        AssemblyStrategy::Coloring => {
            // Pointless for SGS but measured to expose its overhead.
            let classes: Vec<Vec<u32>> = {
                // Reuse the plan's classes if built for Coloring.
                let weights: Vec<f64> =
                    plan.elems.iter().map(|&e| mesh.kinds[e as usize].cost_weight()).collect();
                let g = cfpd_partition::local_element_graph(mesh, &plan.elems, &weights);
                cfpd_partition::greedy_coloring(&g)
                    .color_classes()
                    .into_iter()
                    .map(|c| c.into_iter().map(|li| plan.elems[li as usize]).collect())
                    .collect()
            };
            for class in &classes {
                parallel_for(pool, 0..class.len(), 32, |range| {
                    let mut scratch = ElementScratch::default();
                    for k in range {
                        process(&mut scratch, class[k] as usize);
                    }
                });
            }
        }
        AssemblyStrategy::Multidep => {
            let weights: Vec<f64> =
                plan.elems.iter().map(|&e| mesh.kinds[e as usize].cost_weight()).collect();
            let n_sub = plan.num_subdomains().max(pool.max_workers() * 4);
            let d = cfpd_partition::decompose_subdomains(mesh, &plan.elems, &weights, n_sub);
            let mut graph = TaskGraph::new();
            for (s, members) in d.members.iter().enumerate() {
                let deps: Vec<Dep> =
                    d.adjacency[s].iter().map(|&t| {
                        let key = if (s as u32) < t { (s as u32, t) } else { (t, s as u32) };
                        Dep::mutex((key.0 as usize) * d.members.len() + key.1 as usize)
                    }).collect();
                let process = &process;
                graph.add_task(&deps, move || {
                    let mut scratch = ElementScratch::default();
                    for &e in members {
                        process(&mut scratch, e as usize);
                    }
                });
            }
            graph.execute(pool);
        }
    }

    SgsStats {
        elements: plan.elems.len(),
        total_iterations: total_iters.load(Ordering::Relaxed),
        max_iterations: max_seen.load(Ordering::Relaxed),
    }
}

/// The kind-batched SGS sweep (`LayoutPlan::batched_sgs`): elements
/// grouped by kind through the cached gather schedule, chunked by
/// quadrature-point count. No per-element `elem_nodes` walk, no kind
/// dispatch in the hot loop. Each element's update is independent and
/// reads only the shared velocity field, so the regrouped sweep is
/// bit-identical to every other strategy *and* to itself under any pool
/// size (pinned by `batched_sgs_bit_identical_across_pool_sizes`).
#[allow(clippy::too_many_arguments)]
fn compute_sgs_batched(
    pool: &ThreadPool,
    refs: &[RefElement; 3],
    mesh: &Mesh,
    plan: &AssemblyPlan,
    velocity: &[Vec3],
    props: FluidProps,
    field: &mut SgsField,
    max_iters: usize,
    tol: f64,
) -> SgsStats {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    field.ensure_batches(mesh, &plan.elems);
    // Destructure to borrow the schedule and the value storage
    // simultaneously (the clone-free counterpart of the unbatched path).
    let SgsField { values, offsets, h, batches } = field;
    let batches = batches.as_deref().expect("ensure_batches just built these");
    let view = SgsView::new(values);
    let total_iters = AtomicU64::new(0);
    let max_seen = AtomicUsize::new(0);
    for kb in batches {
        let nn = kb.kind.num_nodes();
        let re = &refs[RefElement::index_of(kb.kind)];
        let ranges = balanced_ranges(&kb.qp_prefix, pool.max_workers().max(1) * 8);
        let (view, offsets, h) = (&view, &*offsets, &*h);
        let (total_iters, max_seen) = (&total_iters, &max_seen);
        parallel_for_ranges(pool, &ranges, |_c, range| {
            let mut scratch = ElementScratch::default();
            for b in range {
                let e = kb.elems[b] as usize;
                let nodes = &kb.gather[b * nn..(b + 1) * nn];
                scratch.load_gather(&mesh.coords, velocity, nodes);
                let lo = offsets[e] as usize;
                let hi = offsets[e + 1] as usize;
                // SAFETY: element ranges are disjoint; each element is
                // processed by exactly one executor per sweep.
                let slice = unsafe { view.range_mut(lo, hi) };
                let iters = sgs_kernel_on(re, &scratch, nn, props, h[e], slice, max_iters, tol);
                total_iters.fetch_add(iters as u64, Ordering::Relaxed);
                max_seen.fetch_max(iters, Ordering::Relaxed);
            }
        });
    }
    SgsStats {
        elements: plan.elems.len(),
        total_iterations: total_iters.load(Ordering::Relaxed),
        max_iterations: max_seen.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    fn fixture() -> (Mesh, [RefElement; 3], ThreadPool, Vec<Vec3>) {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let vel = am
            .mesh
            .coords
            .iter()
            .map(|p| Vec3::new(p.y * 20.0, -p.x * 10.0, 1.0))
            .collect();
        (am.mesh, RefElement::all(), ThreadPool::new(4), vel)
    }

    fn run(strategy: AssemblyStrategy) -> (SgsField, SgsStats) {
        let (mesh, refs, pool, vel) = fixture();
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
        let plan = AssemblyPlan::new(&mesh, elems, strategy, 16);
        let mut field = SgsField::new(&mesh);
        let stats = compute_sgs(
            &pool,
            &refs,
            &mesh,
            &plan,
            &vel,
            FluidProps::default(),
            &mut field,
            10,
            1e-8,
        );
        (field, stats)
    }

    #[test]
    fn sgs_storage_sized_by_quadrature() {
        let (mesh, ..) = fixture();
        let field = SgsField::new(&mesh);
        let expected: usize = (0..mesh.num_elements())
            .map(|e| mesh.kinds[e].num_quad_points())
            .sum();
        assert_eq!(field.values.len(), expected);
    }

    #[test]
    fn all_strategies_compute_same_sgs() {
        let (reference, _) = run(AssemblyStrategy::Serial);
        for s in [AssemblyStrategy::Atomics, AssemblyStrategy::Coloring, AssemblyStrategy::Multidep]
        {
            let (field, stats) = run(s);
            assert_eq!(stats.elements, reference.offsets.len() - 1);
            for (i, (a, b)) in field.values.iter().zip(&reference.values).enumerate() {
                assert!(
                    (*a - *b).norm() < 1e-12,
                    "{s:?} sgs[{i}] differs: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn rotational_flow_produces_nonzero_sgs() {
        let (field, stats) = run(AssemblyStrategy::Atomics);
        assert!(field.mean_norm() > 0.0);
        assert!(stats.total_iterations as usize >= stats.elements);
        assert!(stats.max_iterations >= 1);
    }

    fn run_batched(workers: usize) -> (SgsField, SgsStats) {
        let (mesh, refs, _, vel) = fixture();
        let pool = ThreadPool::new(workers);
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
        let mut plan = AssemblyPlan::new(&mesh, elems, AssemblyStrategy::Atomics, 16);
        plan.batched_sgs = true;
        let mut field = SgsField::new(&mesh);
        let stats = compute_sgs(
            &pool,
            &refs,
            &mesh,
            &plan,
            &vel,
            FluidProps::default(),
            &mut field,
            10,
            1e-8,
        );
        (field, stats)
    }

    #[test]
    fn batched_sgs_bit_identical_to_serial() {
        let (reference, ref_stats) = run(AssemblyStrategy::Serial);
        let (field, stats) = run_batched(4);
        assert_eq!(stats.elements, ref_stats.elements);
        assert_eq!(stats.total_iterations, ref_stats.total_iterations);
        for (i, (a, b)) in field.values.iter().zip(&reference.values).enumerate() {
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "sgs[{i}].x");
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "sgs[{i}].y");
            assert_eq!(a.z.to_bits(), b.z.to_bits(), "sgs[{i}].z");
        }
    }

    #[test]
    fn batched_sgs_bit_identical_across_pool_sizes() {
        let (f1, s1) = run_batched(1);
        let (f4, s4) = run_batched(4);
        assert_eq!(s1.total_iterations, s4.total_iterations);
        assert_eq!(s1.max_iterations, s4.max_iterations);
        for (i, (a, b)) in f1.values.iter().zip(&f4.values).enumerate() {
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "sgs[{i}].x differs across pools");
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "sgs[{i}].y differs across pools");
            assert_eq!(a.z.to_bits(), b.z.to_bits(), "sgs[{i}].z differs across pools");
        }
    }
}
