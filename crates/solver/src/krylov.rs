//! Krylov solvers: Jacobi-preconditioned Conjugate Gradient (for the
//! SPD continuity/pressure system — the paper's *Solver2*) and
//! BiCGSTAB (for the nonsymmetric momentum system — *Solver1*).

use crate::csr::CsrMatrix;

/// A linear operator y = A x, abstracting over assembled sparse
/// matrices and matrix-free element stores. Solvers written against
/// this trait (currently [`bicgstab`]) run bit-identically on either
/// representation when the two `apply` implementations agree to the bit
/// (asserted by the matfree property tests).
pub trait LinearOperator {
    /// Number of rows/columns.
    fn size(&self) -> usize;
    /// y = A x.
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// Diagonal entries (for Jacobi preconditioning).
    fn diagonal(&self) -> Vec<f64>;
}

impl LinearOperator for CsrMatrix {
    fn size(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y)
    }
    fn diagonal(&self) -> Vec<f64> {
        CsrMatrix::diagonal(self)
    }
}

/// Result of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    pub iterations: usize,
    pub residual: f64,
    pub converged: bool,
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Jacobi (diagonal) preconditioner: z = D⁻¹ r.
fn jacobi(diag: &[f64], r: &[f64], z: &mut [f64]) {
    for i in 0..r.len() {
        let d = diag[i];
        z[i] = if d.abs() > 1e-300 { r[i] / d } else { r[i] };
    }
}

/// Preconditioned CG on an SPD matrix. `x` holds the initial guess on
/// entry and the solution on return.
pub fn cg(a: &CsrMatrix, b: &[f64], x: &mut [f64], tol: f64, max_iters: usize) -> SolveStats {
    cg_with_history(a, b, x, tol, max_iters, None)
}

/// [`cg`] that additionally records the relative residual observed at
/// the top of every iteration (the convergence history), for comparing
/// solver variants (e.g. the fused parallel CG) against this reference.
pub fn cg_with_history(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
    mut history: Option<&mut Vec<f64>>,
) -> SolveStats {
    let n = a.n;
    let diag = a.diagonal();
    let mut r = vec![0.0; n];
    a.spmv(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let b_norm = norm(b).max(1e-300);
    let mut z = vec![0.0; n];
    jacobi(&diag, &r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];
    for it in 0..max_iters {
        let res = norm(&r) / b_norm;
        if let Some(h) = history.as_deref_mut() {
            h.push(res);
        }
        if res < tol {
            return SolveStats { iterations: it, residual: res, converged: true };
        }
        cfpd_telemetry::count!("solver.cg_iterations");
        cfpd_flight::record(cfpd_flight::EventKind::SolverIter, 0, 1, it as u64, res.to_bits());
        a.spmv(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap.abs() < 1e-300 {
            return SolveStats { iterations: it, residual: res, converged: false };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        jacobi(&diag, &r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let res = norm(&r) / b_norm;
    SolveStats { iterations: max_iters, residual: res, converged: res < tol }
}

/// Jacobi-preconditioned BiCGSTAB for nonsymmetric systems. Generic
/// over [`LinearOperator`] so the momentum solve can run either on the
/// assembled CSR matrix or the matrix-free element store.
pub fn bicgstab<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iters: usize,
) -> SolveStats {
    let n = a.size();
    let diag = a.diagonal();
    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let b_norm = norm(b).max(1e-300);
    let r0 = r.clone();
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];
    for it in 0..max_iters {
        let res = norm(&r) / b_norm;
        if res < tol {
            return SolveStats { iterations: it, residual: res, converged: true };
        }
        cfpd_telemetry::count!("solver.bicgstab_iterations");
        cfpd_flight::record(cfpd_flight::EventKind::SolverIter, 0, 2, it as u64, res.to_bits());
        let rho_new = dot(&r0, &r);
        if rho_new.abs() < 1e-300 {
            return SolveStats { iterations: it, residual: res, converged: false };
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        jacobi(&diag, &p, &mut phat);
        a.apply(&phat, &mut v);
        let r0v = dot(&r0, &v);
        if r0v.abs() < 1e-300 {
            return SolveStats { iterations: it, residual: res, converged: false };
        }
        alpha = rho / r0v;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if norm(&s) / b_norm < tol {
            for i in 0..n {
                x[i] += alpha * phat[i];
            }
            return SolveStats { iterations: it + 1, residual: norm(&s) / b_norm, converged: true };
        }
        jacobi(&diag, &s, &mut shat);
        a.apply(&shat, &mut t);
        let tt = dot(&t, &t);
        if tt.abs() < 1e-300 {
            return SolveStats { iterations: it, residual: res, converged: false };
        }
        omega = dot(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] = s[i] - omega * t[i];
        }
        if omega.abs() < 1e-300 {
            let res = norm(&r) / b_norm;
            return SolveStats { iterations: it + 1, residual: res, converged: res < tol };
        }
    }
    let res = norm(&r) / b_norm;
    SolveStats { iterations: max_iters, residual: res, converged: res < tol }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1D Poisson matrix (tridiagonal 2,-1) of size n.
    fn poisson_1d(n: usize) -> CsrMatrix {
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            if i > 0 {
                col_idx.push((i - 1) as u32);
                values.push(-1.0);
            }
            col_idx.push(i as u32);
            values.push(2.0);
            if i + 1 < n {
                col_idx.push((i + 1) as u32);
                values.push(-1.0);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix { n, row_ptr, col_idx, values }
    }

    /// Nonsymmetric convection-diffusion-like tridiagonal matrix.
    fn convdiff_1d(n: usize, peclet: f64) -> CsrMatrix {
        let mut a = poisson_1d(n);
        // Add upwind convection: -c on the subdiagonal, +c shifted.
        for i in 0..n {
            let lo = a.row_ptr[i] as usize;
            let hi = a.row_ptr[i + 1] as usize;
            for k in lo..hi {
                let j = a.col_idx[k] as usize;
                if j + 1 == i {
                    a.values[k] -= peclet;
                } else if j == i {
                    a.values[k] += peclet;
                }
            }
        }
        a
    }

    #[test]
    fn cg_solves_spd_system() {
        let n = 64;
        let a = poisson_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let stats = cg(&a, &b, &mut x, 1e-12, 1000);
        assert!(stats.converged, "{stats:?}");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-8, "x[{i}]");
        }
    }

    #[test]
    fn cg_converges_in_at_most_n_iterations() {
        let n = 32;
        let a = poisson_1d(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = cg(&a, &b, &mut x, 1e-10, n + 1);
        assert!(stats.converged, "CG must converge within n iters: {stats:?}");
    }

    #[test]
    fn bicgstab_solves_nonsymmetric_system() {
        let n = 64;
        let a = convdiff_1d(n, 0.7);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let stats = bicgstab(&a, &b, &mut x, 1e-12, 2000);
        assert!(stats.converged, "{stats:?}");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-6, "x[{i}] = {} vs {}", x[i], x_true[i]);
        }
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = poisson_1d(16);
        let b = vec![0.0; 16];
        let mut x = vec![0.0; 16];
        let stats = cg(&a, &b, &mut x, 1e-12, 100);
        assert!(stats.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_converges_immediately() {
        let n = 32;
        let a = poisson_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut x = x_true.clone();
        let stats = cg(&a, &b, &mut x, 1e-10, 100);
        assert_eq!(stats.iterations, 0);
        assert!(stats.converged);
    }
}
