//! CSR sparse matrices with the three scatter-add disciplines the paper
//! compares: atomic updates, and plain updates under an external
//! no-conflict guarantee (coloring / multidependences).

use cfpd_mesh::{Csr, Mesh};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Square CSR matrix over mesh nodes.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    pub n: usize,
    pub row_ptr: Vec<u32>,
    pub col_idx: Vec<u32>,
    pub values: Vec<f64>,
}

/// Shared view over an `f64` slice for concurrent scatter-add **with
/// atomic adds** (the `omp atomic` strategy). Created from an exclusive
/// borrow, so the cast to atomic words is sound.
pub struct AtomicView<'a> {
    values: &'a [AtomicU64],
    /// Number of atomic adds performed (for the performance model's
    /// atomic-penalty accounting).
    pub atomic_ops: AtomicUsize,
}

impl<'a> AtomicView<'a> {
    /// Wrap a mutable slice for concurrent atomic accumulation.
    pub fn from_slice(s: &'a mut [f64]) -> AtomicView<'a> {
        let ptr = s.as_mut_ptr() as *const AtomicU64;
        // SAFETY: f64 and AtomicU64 have identical size/alignment; the
        // exclusive borrow is converted into shared atomic access.
        let values = unsafe { std::slice::from_raw_parts(ptr, s.len()) };
        AtomicView { values, atomic_ops: AtomicUsize::new(0) }
    }
}

/// Shared view over an `f64` slice for concurrent scatter-add **without
/// atomics**, relying on an external guarantee that no two threads touch
/// the same entry concurrently (coloring / multidependences). The
/// guarantee is the caller's obligation; the strategy tests verify it by
/// comparing the result against serial assembly.
pub struct DisjointView<'a> {
    values: &'a [UnsafeCell<f64>],
}

impl<'a> DisjointView<'a> {
    /// Wrap a mutable slice for externally-synchronized accumulation.
    pub fn from_slice(s: &'a mut [f64]) -> DisjointView<'a> {
        let ptr = s.as_mut_ptr() as *const UnsafeCell<f64>;
        // SAFETY: same layout; exclusivity delegated to the caller's
        // coloring/multidependence guarantee.
        let values = unsafe { std::slice::from_raw_parts(ptr, s.len()) };
        DisjointView { values }
    }
}

// SAFETY: concurrent access is governed by the no-conflict contract
// documented above; entries touched by different threads are disjoint.
unsafe impl Sync for DisjointView<'_> {}

/// Immutable borrow of a CSR sparsity pattern, usable while the values
/// are mutably viewed for concurrent scatter.
#[derive(Clone, Copy)]
pub struct CsrPattern<'a> {
    pub n: usize,
    row_ptr: &'a [u32],
    col_idx: &'a [u32],
}

impl CsrPattern<'_> {
    /// Flat index of entry (row, col); panics if not in the pattern.
    #[inline]
    pub fn entry_index(&self, row: usize, col: usize) -> usize {
        let lo = self.row_ptr[row] as usize;
        let hi = self.row_ptr[row + 1] as usize;
        let cols = &self.col_idx[lo..hi];
        lo + cols
            .binary_search(&(col as u32))
            .unwrap_or_else(|_| panic!("entry ({row},{col}) not in sparsity pattern"))
    }
}

impl CsrMatrix {
    /// Build the node-node sparsity pattern of a mesh (an entry per pair
    /// of nodes sharing an element, plus the diagonal), values zeroed.
    pub fn from_mesh(mesh: &Mesh, node_to_elem: &Csr) -> CsrMatrix {
        let n = mesh.num_nodes();
        let mut cols_per_row: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (row, cols) in cols_per_row.iter_mut().enumerate() {
            // Neighbors = nodes of all elements touching this node.
            for &e in node_to_elem.row(row) {
                cols.extend_from_slice(mesh.elem_nodes(e as usize));
            }
            cols.push(row as u32);
            cols.sort_unstable();
            cols.dedup();
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0u32);
        let mut col_idx = Vec::new();
        for cols in &cols_per_row {
            col_idx.extend_from_slice(cols);
            row_ptr.push(col_idx.len() as u32);
        }
        let nnz = col_idx.len();
        CsrMatrix { n, row_ptr, col_idx, values: vec![0.0; nnz] }
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Flat index of entry (row, col); panics if not in the pattern.
    #[inline]
    pub fn entry_index(&self, row: usize, col: usize) -> usize {
        let lo = self.row_ptr[row] as usize;
        let hi = self.row_ptr[row + 1] as usize;
        let cols = &self.col_idx[lo..hi];
        lo + cols
            .binary_search(&(col as u32))
            .unwrap_or_else(|_| panic!("entry ({row},{col}) not in sparsity pattern"))
    }

    /// Add `v` to entry (row, col) — serial scatter.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, v: f64) {
        let i = self.entry_index(row, col);
        self.values[i] += v;
    }

    /// Zero all values, keeping the pattern.
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0.0);
    }

    /// y = A x (serial).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        cfpd_telemetry::count!("solver.spmv_calls");
        cfpd_telemetry::count!("solver.spmv_rows", self.n as u64);
        for row in 0..self.n {
            let lo = self.row_ptr[row] as usize;
            let hi = self.row_ptr[row + 1] as usize;
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            y[row] = acc;
        }
    }

    /// Diagonal entries (for Jacobi preconditioning).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.values[self.entry_index(i, i)]).collect()
    }

    /// Atomic concurrent-scatter view. Requires `&mut self`, so no other
    /// access can alias the values while the view lives.
    pub fn atomic_view(&mut self) -> AtomicView<'_> {
        AtomicView::from_slice(&mut self.values)
    }

    /// Plain concurrent-scatter view (no-conflict contract on callers).
    pub fn disjoint_view(&mut self) -> DisjointView<'_> {
        DisjointView::from_slice(&mut self.values)
    }

    /// Split into an immutable pattern handle and the mutable value
    /// slice — needed to look up entry indices while a concurrent
    /// scatter view over the values is live.
    pub fn split_mut(&mut self) -> (CsrPattern<'_>, &mut [f64]) {
        (
            CsrPattern { n: self.n, row_ptr: &self.row_ptr, col_idx: &self.col_idx },
            &mut self.values,
        )
    }

    /// Immutable pattern handle.
    pub fn pattern(&self) -> CsrPattern<'_> {
        CsrPattern { n: self.n, row_ptr: &self.row_ptr, col_idx: &self.col_idx }
    }

    /// Replace a row with the identity (Dirichlet boundary conditions),
    /// returning the diagonal to 1.
    pub fn set_dirichlet_row(&mut self, row: usize) {
        let lo = self.row_ptr[row] as usize;
        let hi = self.row_ptr[row + 1] as usize;
        for k in lo..hi {
            self.values[k] = if self.col_idx[k] as usize == row { 1.0 } else { 0.0 };
        }
    }
}

impl AtomicView<'_> {
    /// Atomically add `v` at flat index `idx` (CAS loop on the bit
    /// pattern — the portable equivalent of `omp atomic` on a double).
    #[inline]
    pub fn add_at(&self, idx: usize, v: f64) {
        let cell = &self.values[idx];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = f64::to_bits(f64::from_bits(cur) + v);
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.atomic_ops.fetch_add(1, Ordering::Relaxed);
    }
}

impl DisjointView<'_> {
    /// Add `v` at flat index `idx` with a plain read-modify-write.
    ///
    /// # Safety
    /// No other thread may access `idx` concurrently (guaranteed by the
    /// coloring / multidependences schedule).
    #[inline]
    pub unsafe fn add_at(&self, idx: usize, v: f64) {
        let p = self.values[idx].get();
        unsafe { *p += v };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfpd_mesh::{generate_airway, AirwaySpec};

    fn demo_matrix() -> CsrMatrix {
        let am = generate_airway(&AirwaySpec::small()).unwrap();
        let n2e = am.mesh.node_to_elements();
        CsrMatrix::from_mesh(&am.mesh, &n2e)
    }

    #[test]
    fn pattern_contains_diagonal_and_is_sorted() {
        let a = demo_matrix();
        for row in 0..a.n {
            let lo = a.row_ptr[row] as usize;
            let hi = a.row_ptr[row + 1] as usize;
            let cols = &a.col_idx[lo..hi];
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {row} unsorted");
            assert!(cols.binary_search(&(row as u32)).is_ok(), "row {row} lacks diagonal");
        }
    }

    #[test]
    fn pattern_is_symmetric() {
        let a = demo_matrix();
        for row in 0..a.n {
            let lo = a.row_ptr[row] as usize;
            let hi = a.row_ptr[row + 1] as usize;
            for k in lo..hi {
                let col = a.col_idx[k] as usize;
                // (col, row) must exist too.
                let _ = a.entry_index(col, row);
            }
        }
    }

    #[test]
    fn add_and_spmv() {
        // 2x2 matrix [[2, 1], [0, 3]] acting on [1, 2].
        let mut a = CsrMatrix {
            n: 2,
            row_ptr: vec![0, 2, 3],
            col_idx: vec![0, 1, 1],
            values: vec![0.0; 3],
        };
        a.add(0, 0, 2.0);
        a.add(0, 1, 1.0);
        a.add(1, 1, 3.0);
        let mut y = vec![0.0; 2];
        a.spmv(&[1.0, 2.0], &mut y);
        assert_eq!(y, vec![4.0, 6.0]);
        assert_eq!(a.diagonal(), vec![2.0, 3.0]);
    }

    #[test]
    fn atomic_view_concurrent_adds_do_not_lose_updates() {
        let mut a = CsrMatrix {
            n: 1,
            row_ptr: vec![0, 1],
            col_idx: vec![0],
            values: vec![0.0],
        };
        let view = a.atomic_view();
        let pool = cfpd_runtime::ThreadPool::new(4);
        cfpd_runtime::parallel_for(&pool, 0..10_000, 16, |r| {
            for _ in r {
                view.add_at(0, 1.0);
            }
        });
        assert_eq!(view.atomic_ops.load(Ordering::SeqCst), 10_000);
        drop(view);
        assert_eq!(a.values[0], 10_000.0);
    }

    #[test]
    fn disjoint_view_parallel_disjoint_writes() {
        let mut a = CsrMatrix {
            n: 4,
            row_ptr: vec![0, 1, 2, 3, 4],
            col_idx: vec![0, 1, 2, 3],
            values: vec![0.0; 4],
        };
        let view = a.disjoint_view();
        let pool = cfpd_runtime::ThreadPool::new(4);
        // Each index touched by exactly one chunk (grain 1, disjoint).
        cfpd_runtime::parallel_for(&pool, 0..4, 1, |r| {
            for i in r {
                // SAFETY: indices are disjoint across chunks.
                unsafe { view.add_at(i, (i + 1) as f64) };
            }
        });
        drop(view);
        assert_eq!(a.values, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dirichlet_row() {
        let mut a = CsrMatrix {
            n: 2,
            row_ptr: vec![0, 2, 4],
            col_idx: vec![0, 1, 0, 1],
            values: vec![5.0, 6.0, 7.0, 8.0],
        };
        a.set_dirichlet_row(0);
        assert_eq!(a.values, vec![1.0, 0.0, 7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "not in sparsity pattern")]
    fn missing_entry_panics() {
        let a = CsrMatrix {
            n: 2,
            row_ptr: vec![0, 1, 2],
            col_idx: vec![0, 1],
            values: vec![0.0; 2],
        };
        a.entry_index(0, 1);
    }
}
