//! A resizable worker pool — the OpenMP/OmpSs substitute.
//!
//! The defining requirement (from the paper's DLB integration, §3.2) is
//! that the number of *active* workers can be changed between parallel
//! regions by an external agent, mirroring `omp_set_num_threads()` being
//! called by the DLB library when cores are lent or reclaimed. The pool
//! therefore spawns `max_workers` threads up front (the cores a rank
//! could ever own on its node) and activates a subset per region.
//!
//! Execution model: one *parallel region* at a time (exactly OpenMP's
//! fork-join model). The caller thread is executor 0 and participates;
//! workers `1..active` join. Work distribution inside a region is up to
//! the region body (e.g. [`crate::parallel_for`] uses a shared chunk
//! cursor, giving OpenMP `schedule(dynamic)` behaviour).

use cfpd_testkit::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Type-erased pointer to the region body (`&dyn Fn(usize)` transmuted
/// to `'static`; validity is guaranteed because `run_region` does not
/// return until every participant has left the body).
#[derive(Clone, Copy)]
struct RegionPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is Sync and outlives every access (see above).
unsafe impl Send for RegionPtr {}
unsafe impl Sync for RegionPtr {}

struct PoolState {
    /// Monotonically increasing region id; workers watch it change.
    generation: u64,
    /// Body of the current region, if one is running.
    region: Option<RegionPtr>,
    /// Worker ids `1..participants` take part in the current region.
    participants: usize,
    /// Participating workers that have finished the current region.
    finished: usize,
}

/// Worker-side trace recording (the per-thread Useful intervals that
/// feed the per-(rank, worker) timeline).
struct WorkerTrace {
    epoch: Instant,
    /// `(worker_id, t_start, t_end)` of each region execution.
    log: Vec<(usize, f64, f64)>,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Number of executors (caller + workers) activated for the *next*
    /// region. Changed by `set_active` — the `omp_set_num_threads`
    /// equivalent that DLB drives.
    active: AtomicUsize,
    shutdown: AtomicBool,
    /// Fast gate for the tracing branch in `worker_loop` (the mutexed
    /// trace is only touched when set).
    trace_on: AtomicBool,
    trace: Mutex<Option<WorkerTrace>>,
}

/// Fork-join worker pool with a dynamically adjustable executor count.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    max_workers: usize,
}

impl ThreadPool {
    /// Create a pool able to use up to `max_workers` executors
    /// (including the caller thread). `max_workers - 1` threads are
    /// spawned; initially all are active.
    pub fn new(max_workers: usize) -> ThreadPool {
        assert!(max_workers >= 1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                generation: 0,
                region: None,
                participants: 0,
                finished: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            active: AtomicUsize::new(max_workers),
            shutdown: AtomicBool::new(false),
            trace_on: AtomicBool::new(false),
            trace: Mutex::new(None),
        });
        let mut handles = Vec::with_capacity(max_workers.saturating_sub(1));
        for id in 1..max_workers {
            let sh = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pool-worker-{id}"))
                    .spawn(move || worker_loop(sh, id))
                    .expect("spawn pool worker"),
            );
        }
        ThreadPool { shared, handles, max_workers }
    }

    /// Maximum executors this pool can ever use.
    #[inline]
    pub fn max_workers(&self) -> usize {
        self.max_workers
    }

    /// Executors that will participate in the next region.
    #[inline]
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Set the executor count for subsequent regions (clamped to
    /// `1..=max_workers`). Safe to call from any thread at any time —
    /// this is the entry point DLB uses to lend/reclaim cores.
    pub fn set_active(&self, n: usize) {
        let n = n.clamp(1, self.max_workers);
        self.shared.active.store(n, Ordering::Relaxed);
    }

    /// Start recording per-worker region intervals, timestamped in
    /// seconds since `epoch` (share the simulation's run epoch so
    /// worker events line up with phase and message records). Clears
    /// any previous log.
    pub fn worker_trace_start(&self, epoch: Instant) {
        *self.shared.trace.lock() = Some(WorkerTrace { epoch, log: Vec::new() });
        self.shared.trace_on.store(true, Ordering::Release);
    }

    /// Stop recording and return the accumulated `(worker, t_start,
    /// t_end)` intervals, sorted by (worker, t_start). Worker 0 (the
    /// caller thread) is not recorded here — its timeline is carved
    /// from the phase/wait records instead.
    pub fn worker_trace_drain(&self) -> Vec<(usize, f64, f64)> {
        self.shared.trace_on.store(false, Ordering::Release);
        let mut log = match self.shared.trace.lock().take() {
            Some(t) => t.log,
            None => Vec::new(),
        };
        log.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        log
    }

    /// Execute one parallel region: `body(executor_id)` runs once on
    /// each of the `active()` executors (caller = id 0). Returns when
    /// all executors have left the body.
    pub fn run_region<F>(&self, body: F)
    where
        F: Fn(usize) + Sync,
    {
        cfpd_telemetry::count!("runtime.regions");
        let _span = cfpd_telemetry::span!("runtime.region_ns");
        let participants = self.active();
        if participants <= 1 {
            body(0);
            return;
        }
        // SAFETY: we erase the lifetime; workers only dereference while
        // the region is live, and we block below until `finished ==
        // participants - 1`, so the borrow outlives all accesses.
        let ptr: RegionPtr = unsafe {
            RegionPtr(std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(&body as &(dyn Fn(usize) + Sync) as *const _))
        };
        {
            let mut st = self.shared.state.lock();
            debug_assert!(st.region.is_none(), "nested regions not supported");
            st.generation += 1;
            st.region = Some(ptr);
            st.participants = participants;
            st.finished = 0;
            self.shared.work_cv.notify_all();
        }
        body(0);
        let mut st = self.shared.state.lock();
        while st.finished < st.participants - 1 {
            self.shared.done_cv.wait(&mut st);
        }
        st.region = None;
    }
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    let mut last_gen = 0u64;
    loop {
        let (ptr, participate) = {
            let mut st = shared.state.lock();
            while st.generation == last_gen && !shared.shutdown.load(Ordering::Relaxed) {
                shared.work_cv.wait(&mut st);
            }
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            last_gen = st.generation;
            (st.region, id < st.participants)
        };
        if !participate {
            continue;
        }
        if let Some(RegionPtr(ptr)) = ptr {
            // SAFETY: see run_region — the body is alive until we report
            // completion below.
            let body: &(dyn Fn(usize) + Sync) = unsafe { &*ptr };
            let tracing = shared.trace_on.load(Ordering::Acquire);
            let t0 = if tracing {
                shared.trace.lock().as_ref().map(|t| t.epoch.elapsed().as_secs_f64())
            } else {
                None
            };
            body(id);
            if let Some(t0) = t0 {
                let mut tr = shared.trace.lock();
                if let Some(t) = tr.as_mut() {
                    let t1 = t.epoch.elapsed().as_secs_f64();
                    t.log.push((id, t0, t1));
                }
            }
            let mut st = shared.state.lock();
            st.finished += 1;
            if st.finished == st.participants - 1 {
                shared.done_cv.notify_all();
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        {
            let _guard = self.shared.state.lock();
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn region_runs_on_all_active_executors() {
        let pool = ThreadPool::new(4);
        let count = AtomicUsize::new(0);
        pool.run_region(|_id| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn executor_ids_are_distinct_and_in_range() {
        let pool = ThreadPool::new(4);
        let seen = Mutex::new(Vec::new());
        pool.run_region(|id| {
            seen.lock().push(id);
        });
        let mut ids = seen.into_inner();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn set_active_changes_participation() {
        let pool = ThreadPool::new(4);
        pool.set_active(2);
        let count = AtomicUsize::new(0);
        pool.run_region(|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
        // Grow back (a DLB "lend" to this pool).
        pool.set_active(4);
        let count = AtomicUsize::new(0);
        pool.run_region(|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn set_active_clamps() {
        let pool = ThreadPool::new(3);
        pool.set_active(0);
        assert_eq!(pool.active(), 1);
        pool.set_active(100);
        assert_eq!(pool.active(), 3);
    }

    #[test]
    fn single_executor_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let mut x = 0;
        // Mutable capture works because with one executor the body runs
        // inline exactly once; prove it via a Mutex anyway.
        let cell = Mutex::new(&mut x);
        pool.run_region(|id| {
            assert_eq!(id, 0);
            **cell.lock() += 1;
        });
        assert_eq!(x, 1);
    }

    #[test]
    fn sequential_regions_reuse_workers() {
        let pool = ThreadPool::new(4);
        for _ in 0..50 {
            let count = AtomicUsize::new(0);
            pool.run_region(|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(count.load(Ordering::SeqCst), 4);
        }
    }

    #[test]
    fn borrowed_data_visible_after_region() {
        let pool = ThreadPool::new(4);
        let data: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run_region(|id| {
            data[id].store(id + 1, Ordering::SeqCst);
        });
        let vals: Vec<usize> = data.iter().map(|a| a.load(Ordering::SeqCst)).collect();
        assert_eq!(vals, vec![1, 2, 3, 4]);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let pool = ThreadPool::new(8);
        pool.run_region(|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn worker_trace_records_regions_for_workers_only() {
        let pool = ThreadPool::new(4);
        let epoch = Instant::now();
        pool.worker_trace_start(epoch);
        pool.run_region(|_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        pool.run_region(|_| {});
        let log = pool.worker_trace_drain();
        // Workers 1..3 ran two regions each; worker 0 is not recorded.
        assert_eq!(log.len(), 6, "log: {log:?}");
        assert!(log.iter().all(|&(w, a, b)| (1..4).contains(&w) && b >= a && a >= 0.0));
        // Sorted by (worker, t_start).
        for w in log.windows(2) {
            assert!((w[0].0, w[0].1) <= (w[1].0, w[1].1));
        }
        // Drained and off: further regions record nothing.
        pool.run_region(|_| {});
        assert!(pool.worker_trace_drain().is_empty());
    }

    #[test]
    fn worker_trace_off_by_default() {
        let pool = ThreadPool::new(3);
        pool.run_region(|_| {});
        assert!(pool.worker_trace_drain().is_empty());
    }
}
