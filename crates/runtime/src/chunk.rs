//! Cost-balanced chunking: split an index range into contiguous chunks
//! of approximately equal *weight* instead of equal *length*.
//!
//! The FEM hot loops are skewed — rows of a CSR matrix differ in nnz,
//! elements differ in quadrature cost (boundary-layer prisms vs. core
//! tets) — so fixed-grain chunking (e.g. 256 rows per chunk) hands some
//! executors several times the work of others. Given the monotone
//! prefix-weight array these structures already carry (`row_ptr`, SGS
//! offsets, a cost prefix sum), [`balanced_ranges`] places chunk
//! boundaries by binary search so every chunk carries ≈ total/chunks
//! weight. The decomposition depends only on the prefix array and the
//! requested chunk count — never on thread count or timing — so any
//! chunk-indexed reduction summed in chunk order is deterministic.

use crate::pool::ThreadPool;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Split `0..prefix.len()-1` into at most `max_chunks` contiguous,
/// non-empty ranges of approximately equal weight, where item `i`
/// weighs `prefix[i+1] - prefix[i]`. `prefix` must be monotone
/// non-decreasing (a CSR `row_ptr` is exactly this).
pub fn balanced_ranges(prefix: &[u32], max_chunks: usize) -> Vec<Range<usize>> {
    let n = prefix.len().saturating_sub(1);
    if n == 0 {
        return Vec::new();
    }
    let chunks = max_chunks.clamp(1, n);
    let base = prefix[0] as u64;
    let total = prefix[n] as u64 - base;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 1..=chunks {
        let end = if c == chunks {
            n
        } else {
            // First index whose prefix weight reaches c/chunks of the
            // total, never behind the previous boundary.
            let target = base + (total * c as u64) / chunks as u64;
            prefix[..=n]
                .partition_point(|&p| (p as u64) < target)
                .max(start + 1)
                .min(n)
        };
        if end > start {
            ranges.push(start..end);
            start = end;
        }
    }
    ranges
}

/// Prefix-weight array for [`balanced_ranges`] from a per-item integer
/// cost function: `prefix[i+1] - prefix[i] = cost(i)`.
pub fn prefix_weights<F: Fn(usize) -> u32>(n: usize, cost: F) -> Vec<u32> {
    let mut prefix = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    prefix.push(0);
    for i in 0..n {
        acc += cost(i);
        prefix.push(acc);
    }
    prefix
}

/// Run `body` once per pre-computed chunk, distributed dynamically over
/// the pool's active executors. The body receives the chunk index (for
/// chunk-ordered deterministic reductions) and the index range.
pub fn parallel_for_ranges<F>(pool: &ThreadPool, ranges: &[Range<usize>], body: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    if ranges.is_empty() {
        return;
    }
    // With a single active executor the cursor loop would walk the
    // chunks in index order on one worker anyway — run them inline on
    // the calling thread instead and skip the region handoff entirely.
    // Same chunks, same order: bit-identical to the parallel path.
    if pool.active() <= 1 {
        for (c, r) in ranges.iter().enumerate() {
            body(c, r.clone());
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    pool.run_region(|_id| loop {
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= ranges.len() {
            break;
        }
        body(c, ranges[c].clone());
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items_in_order() {
        let prefix: Vec<u32> = (0..=100).map(|i| i * 3).collect();
        let ranges = balanced_ranges(&prefix, 7);
        assert!(ranges.len() <= 7);
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next);
            assert!(r.end > r.start);
            next = r.end;
        }
        assert_eq!(next, 100);
    }

    #[test]
    fn skewed_weights_are_balanced() {
        // One huge item at the front, many tiny ones after.
        let costs: Vec<u32> = std::iter::once(1000).chain(std::iter::repeat(1).take(999)).collect();
        let prefix = prefix_weights(1000, |i| costs[i]);
        let ranges = balanced_ranges(&prefix, 4);
        // The heavy item must sit alone (its weight already exceeds the
        // per-chunk target).
        assert_eq!(ranges[0], 0..1);
        // Remaining chunks split the tail roughly evenly.
        for r in &ranges[1..] {
            let w: u32 = costs[r.clone()].iter().sum();
            assert!(w <= 600, "chunk {r:?} weighs {w}");
        }
    }

    #[test]
    fn more_chunks_than_items_degenerates_to_singletons() {
        let prefix = prefix_weights(3, |_| 5);
        let ranges = balanced_ranges(&prefix, 16);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn zero_weight_items_still_covered() {
        let prefix = vec![0u32, 0, 0, 10, 10, 20];
        let ranges = balanced_ranges(&prefix, 2);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 5);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 5);
    }

    #[test]
    fn parallel_ranges_hit_every_chunk_once() {
        let pool = ThreadPool::new(4);
        let prefix = prefix_weights(512, |i| (i % 7 + 1) as u32);
        let ranges = balanced_ranges(&prefix, 13);
        let hits: Vec<AtomicUsize> = (0..512).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_ranges(&pool, &ranges, |_c, r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
