//! Chunked parallel loops over index ranges (the `omp parallel do`
//! equivalent, with dynamic scheduling).

use crate::pool::ThreadPool;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `body` over `range` in chunks of (at most) `grain` indices,
/// distributed dynamically over the pool's active executors.
///
/// Dynamic scheduling mirrors what a production FEM assembly loop uses
/// and lets late-joining or early-leaving executors balance naturally.
pub fn parallel_for<F>(pool: &ThreadPool, range: Range<usize>, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let start = range.start;
    let end = range.end;
    if start >= end {
        return;
    }
    let cursor = AtomicUsize::new(start);
    pool.run_region(|_id| loop {
        let lo = cursor.fetch_add(grain, Ordering::Relaxed);
        if lo >= end {
            break;
        }
        let hi = (lo + grain).min(end);
        cfpd_telemetry::count!("runtime.chunks");
        body(lo..hi);
    });
}

/// Like [`parallel_for`] but the body also receives the executor id —
/// used for per-thread scratch buffers in the FEM kernels.
pub fn parallel_for_with_tid<F>(pool: &ThreadPool, range: Range<usize>, grain: usize, body: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let start = range.start;
    let end = range.end;
    if start >= end {
        return;
    }
    let cursor = AtomicUsize::new(start);
    pool.run_region(|id| loop {
        let lo = cursor.fetch_add(grain, Ordering::Relaxed);
        if lo >= end {
            break;
        }
        let hi = (lo + grain).min(end);
        cfpd_telemetry::count!("runtime.chunks");
        body(id, lo..hi);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(&pool, 0..n, 64, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_noop() {
        let pool = ThreadPool::new(2);
        parallel_for(&pool, 5..5, 8, |_| panic!("must not be called"));
    }

    #[test]
    fn grain_zero_treated_as_one() {
        let pool = ThreadPool::new(2);
        let sum = AtomicUsize::new(0);
        parallel_for(&pool, 0..10, 0, |r| {
            sum.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn tid_in_active_range() {
        let pool = ThreadPool::new(4);
        pool.set_active(3);
        parallel_for_with_tid(&pool, 0..1000, 16, |tid, _r| {
            assert!(tid < 3);
        });
    }

    #[test]
    fn matches_sequential_reduction() {
        let pool = ThreadPool::new(4);
        let n = 5000;
        let total = AtomicUsize::new(0);
        parallel_for(&pool, 0..n, 37, |r| {
            let local: usize = r.sum();
            total.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
