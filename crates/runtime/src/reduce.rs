//! Parallel reductions and statically-scheduled loops — the
//! `reduction(...)` and `schedule(static)` counterparts of the
//! dynamic-scheduling [`crate::parallel_for`].

use crate::pool::ThreadPool;
use cfpd_testkit::sync::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel reduction over an index range: each executor folds chunks
/// with `fold`, partial results are combined with `combine`.
///
/// ```
/// use cfpd_runtime::{ThreadPool, parallel_reduce};
/// let pool = ThreadPool::new(4);
/// let sum = parallel_reduce(&pool, 0..1000, 64, 0u64,
///     |acc, range| acc + range.map(|i| i as u64).sum::<u64>(),
///     |a, b| a + b);
/// assert_eq!(sum, 499_500);
/// ```
pub fn parallel_reduce<T, F, C>(
    pool: &ThreadPool,
    range: Range<usize>,
    grain: usize,
    identity: T,
    fold: F,
    combine: C,
) -> T
where
    T: Clone + Send + Sync,
    F: Fn(T, Range<usize>) -> T + Sync,
    C: Fn(T, T) -> T + Sync,
{
    let grain = grain.max(1);
    let (start, end) = (range.start, range.end);
    if start >= end {
        return identity;
    }
    let cursor = AtomicUsize::new(start);
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::new());
    pool.run_region(|_id| {
        let mut acc = identity.clone();
        loop {
            let lo = cursor.fetch_add(grain, Ordering::Relaxed);
            if lo >= end {
                break;
            }
            let hi = (lo + grain).min(end);
            acc = fold(acc, lo..hi);
        }
        partials.lock().push(acc);
    });
    partials
        .into_inner()
        .into_iter()
        .fold(identity, |a, b| combine(a, b))
}

/// Statically-scheduled parallel loop: the range is pre-split into one
/// contiguous block per executor (OpenMP `schedule(static)`), maximizing
/// spatial locality at the cost of balance for irregular work.
pub fn parallel_for_static<F>(pool: &ThreadPool, range: Range<usize>, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let (start, end) = (range.start, range.end);
    if start >= end {
        return;
    }
    let n = end - start;
    let workers = pool.active().max(1);
    pool.run_region(|id| {
        let per = n.div_ceil(workers);
        let lo = start + id * per;
        let hi = (lo + per).min(end);
        if lo < hi {
            body(lo..hi);
        }
    });
}

/// Parallel dot product of two equal-length slices (the hot kernel of
/// the Krylov solvers when run hybrid).
pub fn parallel_dot(pool: &ThreadPool, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    parallel_reduce(
        pool,
        0..a.len(),
        4096,
        0.0f64,
        |acc, r| acc + r.map(|i| a[i] * b[i]).sum::<f64>(),
        |x, y| x + y,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_matches_sequential() {
        let pool = ThreadPool::new(4);
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let par = parallel_reduce(
            &pool,
            0..data.len(),
            128,
            0.0,
            |acc, r| acc + r.map(|i| data[i]).sum::<f64>(),
            |a, b| a + b,
        );
        let seq: f64 = data.iter().sum();
        assert!((par - seq).abs() < 1e-9);
    }

    #[test]
    fn reduce_empty_range_is_identity() {
        let pool = ThreadPool::new(2);
        let v = parallel_reduce(&pool, 3..3, 8, 42i64, |a, _| a + 1, |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn reduce_max() {
        let pool = ThreadPool::new(4);
        let data: Vec<i64> = (0..5000).map(|i| (i * 7919) % 4999).collect();
        let m = parallel_reduce(
            &pool,
            0..data.len(),
            64,
            i64::MIN,
            |acc, r| r.fold(acc, |a, i| a.max(data[i])),
            |a, b| a.max(b),
        );
        assert_eq!(m, *data.iter().max().unwrap());
    }

    #[test]
    fn static_schedule_covers_range_once() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_static(&pool, 0..1000, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn static_schedule_respects_active_count() {
        let pool = ThreadPool::new(4);
        pool.set_active(2);
        let seen = Mutex::new(Vec::new());
        parallel_for_static(&pool, 0..100, |r| {
            seen.lock().push(r);
        });
        let blocks = seen.into_inner();
        assert_eq!(blocks.len(), 2, "one block per active executor: {blocks:?}");
    }

    #[test]
    fn dot_product() {
        let pool = ThreadPool::new(4);
        let a: Vec<f64> = (0..3000).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..3000).map(|i| 2.0 * i as f64).collect();
        let d = parallel_dot(&pool, &a, &b);
        let expect: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((d - expect).abs() / expect < 1e-12);
    }
}
