//! # cfpd-runtime — a task-based shared-memory runtime (OmpSs substitute)
//!
//! The paper's second level of parallelism is OmpSs/OpenMP. Its two key
//! features for this study are (1) a worker pool whose size can be
//! changed by the DLB library (`omp_set_num_threads` via
//! [`ThreadPool::set_active`]) and (2) OpenMP 5.0 *multidependences*:
//! dependence lists computed at runtime plus the `mutexinoutset`
//! relationship ([`taskgraph`]). Both are implemented here from scratch
//! on the std-based lock primitives of `cfpd-testkit::sync`.
//!
//! The three matrix-assembly parallelization strategies of the paper's
//! Fig. 4 (atomics / coloring / multidependences) are built on these
//! primitives in `cfpd-solver::assembly`.

pub mod chunk;
pub mod parallel_for;
pub mod pool;
pub mod reduce;
pub mod taskgraph;

pub use chunk::{balanced_ranges, parallel_for_ranges, prefix_weights};
pub use parallel_for::{parallel_for, parallel_for_with_tid};
pub use reduce::{parallel_dot, parallel_for_static, parallel_reduce};
pub use pool::ThreadPool;
pub use taskgraph::{Dep, DepKind, ExecStats, TaskGraph, TaskId};
