//! Task graph with OpenMP 5.0-style dependences, including
//! **multidependences**: runtime-computed dependence lists ("iterators
//! over dependences") and the `mutexinoutset` relationship the paper
//! evaluates (§3.1). `mutexinoutset` expresses *incompatibility*: two
//! tasks sharing such an object may run in either order but never
//! concurrently — exactly what adjacent mesh subdomains need during
//! matrix assembly.
//!
//! Semantics implemented (matching the OpenMP 5.0 rules):
//! * `In` after a writer group depends on the whole group;
//! * `Out`/`InOut` depend on intervening readers (WAR) or the previous
//!   writer group (WAW);
//! * consecutive `MutexInOutSet` accesses to an object form one
//!   *commutative group*: ordered against surrounding reads/writes, but
//!   unordered among themselves with runtime mutual exclusion.

use crate::pool::ThreadPool;
use cfpd_testkit::sync::Mutex;
use std::cell::UnsafeCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Dependence kind on an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    In,
    Out,
    InOut,
    MutexInOutSet,
}

/// One dependence of a task: `kind` access on object `obj`. Objects are
/// plain integers — the caller maps matrix blocks / subdomains / edges
/// to object ids (this is what the OpenMP dependence *iterators* compute
/// at runtime).
#[derive(Debug, Clone, Copy)]
pub struct Dep {
    pub obj: usize,
    pub kind: DepKind,
}

impl Dep {
    pub fn read(obj: usize) -> Dep {
        Dep { obj, kind: DepKind::In }
    }
    pub fn write(obj: usize) -> Dep {
        Dep { obj, kind: DepKind::Out }
    }
    pub fn readwrite(obj: usize) -> Dep {
        Dep { obj, kind: DepKind::InOut }
    }
    pub fn mutex(obj: usize) -> Dep {
        Dep { obj, kind: DepKind::MutexInOutSet }
    }
}

/// Identifier of a task within one graph.
pub type TaskId = usize;

type TaskFn<'scope> = Box<dyn FnOnce() + Send + 'scope>;

struct FuncSlot<'scope>(UnsafeCell<Option<TaskFn<'scope>>>);
// SAFETY: each slot is taken exactly once, by the single worker that
// popped its task id from the ready queue.
unsafe impl Sync for FuncSlot<'_> {}

#[derive(Default)]
struct ObjTracker {
    /// Readers since the last writer group.
    readers: Vec<TaskId>,
    /// Most recent writer group (single Out/InOut, or a mutexinoutset
    /// commutative group).
    writer_group: Vec<TaskId>,
    writer_is_mutex: bool,
    /// Predecessors the current mutex group was given (so late joiners
    /// of the same group depend on them too).
    group_preds: Vec<TaskId>,
}

/// Execution statistics (fed to the performance model's overhead
/// calibration and useful in tests).
#[derive(Debug, Default, Clone)]
pub struct ExecStats {
    pub tasks_run: usize,
    /// Times a worker had to requeue a task because a mutexinoutset
    /// object was held by a concurrent incompatible task.
    pub mutex_retries: usize,
    /// Maximum number of tasks that were ever ready simultaneously — a
    /// lower bound on achievable parallelism.
    pub max_ready: usize,
}

/// A dependence task graph; build with [`TaskGraph::add_task`], run with
/// [`TaskGraph::execute`].
pub struct TaskGraph<'scope> {
    funcs: Vec<FuncSlot<'scope>>,
    preds: Vec<Vec<TaskId>>,
    mutex_objs: Vec<Vec<usize>>,
    trackers: HashMap<usize, ObjTracker>,
}

impl<'scope> TaskGraph<'scope> {
    pub fn new() -> Self {
        TaskGraph {
            funcs: Vec::new(),
            preds: Vec::new(),
            mutex_objs: Vec::new(),
            trackers: HashMap::new(),
        }
    }

    pub fn num_tasks(&self) -> usize {
        self.funcs.len()
    }

    /// Add a task with the given dependence list (computed at runtime —
    /// the "iterator over dependences" of OpenMP 5.0). Tasks are ordered
    /// by insertion ("program order") for the In/Out/InOut rules.
    pub fn add_task<F>(&mut self, deps: &[Dep], f: F) -> TaskId
    where
        F: FnOnce() + Send + 'scope,
    {
        let id = self.funcs.len();
        let mut my_preds: Vec<TaskId> = Vec::new();
        let mut my_mutex: Vec<usize> = Vec::new();

        for d in deps {
            let tr = self.trackers.entry(d.obj).or_default();
            match d.kind {
                DepKind::In => {
                    my_preds.extend_from_slice(&tr.writer_group);
                    tr.readers.push(id);
                }
                DepKind::Out | DepKind::InOut => {
                    if tr.readers.is_empty() {
                        my_preds.extend_from_slice(&tr.writer_group);
                    } else {
                        my_preds.extend_from_slice(&tr.readers);
                    }
                    tr.readers.clear();
                    tr.writer_group = vec![id];
                    tr.writer_is_mutex = false;
                    tr.group_preds.clear();
                }
                DepKind::MutexInOutSet => {
                    if tr.writer_is_mutex && tr.readers.is_empty() {
                        // Join the open commutative group.
                        my_preds.extend_from_slice(&tr.group_preds);
                        tr.writer_group.push(id);
                    } else {
                        let preds: Vec<TaskId> = if tr.readers.is_empty() {
                            tr.writer_group.clone()
                        } else {
                            tr.readers.clone()
                        };
                        my_preds.extend_from_slice(&preds);
                        tr.readers.clear();
                        tr.writer_group = vec![id];
                        tr.writer_is_mutex = true;
                        tr.group_preds = preds;
                    }
                    my_mutex.push(d.obj);
                }
            }
        }
        my_preds.sort_unstable();
        my_preds.dedup();
        // A dependence list may touch the same object several times
        // (e.g. `inout(o)` registering this task as o's writer group and
        // a later `in(o)` in the same list then reading that group).
        // OpenMP merges same-object deps per task; a task never depends
        // on itself — without this filter the self-edge would leave the
        // in-count permanently nonzero and hang the graph.
        my_preds.retain(|&p| p != id);
        my_mutex.sort_unstable();
        my_mutex.dedup();

        self.funcs.push(FuncSlot(UnsafeCell::new(Some(Box::new(f)))));
        self.preds.push(my_preds);
        self.mutex_objs.push(my_mutex);
        id
    }

    /// Execute all tasks on the pool, respecting dependences and
    /// mutexinoutset exclusion. Consumes the graph.
    pub fn execute(self, pool: &ThreadPool) -> ExecStats {
        let n = self.funcs.len();
        if n == 0 {
            return ExecStats::default();
        }
        // Invert predecessor lists into successor lists + in-counts.
        let mut successors: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut in_counts: Vec<AtomicUsize> = Vec::with_capacity(n);
        for (t, preds) in self.preds.iter().enumerate() {
            for &p in preds {
                debug_assert!(p < t, "edges must point forward in program order");
                successors[p].push(t as u32);
            }
            in_counts.push(AtomicUsize::new(preds.len()));
        }
        let num_objs = self
            .mutex_objs
            .iter()
            .flat_map(|v| v.iter())
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        let locks: Vec<AtomicBool> = (0..num_objs).map(|_| AtomicBool::new(false)).collect();

        let ready: Mutex<VecDeque<u32>> = Mutex::new(
            (0..n)
                .filter(|&t| in_counts[t].load(Ordering::Relaxed) == 0)
                .map(|t| t as u32)
                .collect(),
        );
        let completed = AtomicUsize::new(0);
        let retries = AtomicUsize::new(0);
        let max_ready = AtomicUsize::new(ready.lock().len());
        let funcs = &self.funcs;
        let mutex_objs = &self.mutex_objs;

        pool.run_region(|_tid| loop {
            let task = ready.lock().pop_front();
            let t = match task {
                Some(t) => t as usize,
                None => {
                    if completed.load(Ordering::Acquire) == n {
                        break;
                    }
                    std::thread::yield_now();
                    continue;
                }
            };
            // Acquire mutexinoutset objects in ascending order; on any
            // failure release what we got and requeue the task.
            let objs = &mutex_objs[t];
            let mut acquired = 0usize;
            let ok = objs.iter().all(|&o| {
                if locks[o]
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    acquired += 1;
                    true
                } else {
                    false
                }
            });
            if !ok {
                for &o in &objs[..acquired] {
                    locks[o].store(false, Ordering::Release);
                }
                retries.fetch_add(1, Ordering::Relaxed);
                ready.lock().push_back(t as u32);
                std::thread::yield_now();
                continue;
            }
            // SAFETY: `t` was popped exactly once; we are the only
            // accessor of this slot.
            let f = unsafe { (*funcs[t].0.get()).take().expect("task claimed twice") };
            f();
            for &o in objs.iter() {
                locks[o].store(false, Ordering::Release);
            }
            // Release successors.
            let mut newly = Vec::new();
            for &s in &successors[t] {
                if in_counts[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                    newly.push(s);
                }
            }
            if !newly.is_empty() {
                let mut q = ready.lock();
                q.extend(newly);
                max_ready.fetch_max(q.len(), Ordering::Relaxed);
            }
            completed.fetch_add(1, Ordering::AcqRel);
        });

        debug_assert_eq!(completed.load(Ordering::SeqCst), n);
        ExecStats {
            tasks_run: n,
            mutex_retries: retries.load(Ordering::SeqCst),
            max_ready: max_ready.load(Ordering::SeqCst),
        }
    }
}

impl Default for TaskGraph<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn out_then_in_ordering() {
        let pool = ThreadPool::new(4);
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        for i in 0..1 {
            let l = Arc::clone(&log);
            g.add_task(&[Dep::write(0)], move || l.lock().push(("w", i)));
        }
        for i in 0..3 {
            let l = Arc::clone(&log);
            g.add_task(&[Dep::read(0)], move || l.lock().push(("r", i)));
        }
        let l = Arc::clone(&log);
        g.add_task(&[Dep::write(0)], move || l.lock().push(("w2", 0)));
        g.execute(&pool);
        let log = log.lock();
        assert_eq!(log.len(), 5);
        assert_eq!(log[0], ("w", 0), "writer first");
        assert_eq!(log[4], ("w2", 0), "second writer after all readers");
    }

    #[test]
    fn independent_objects_run_unordered() {
        // No ordering constraints: all tasks complete.
        let pool = ThreadPool::new(4);
        let count = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..100 {
            let c = Arc::clone(&count);
            g.add_task(&[Dep::write(i)], move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let stats = g.execute(&pool);
        assert_eq!(count.load(Ordering::SeqCst), 100);
        assert_eq!(stats.tasks_run, 100);
        assert!(stats.max_ready >= 100, "all were ready at once");
    }

    #[test]
    fn mutexinoutset_excludes_but_does_not_order() {
        // Tasks sharing a mutex object must never overlap; track overlap
        // with an "inside" counter.
        let pool = ThreadPool::new(4);
        let inside = Arc::new(AtomicUsize::new(0));
        let max_inside = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for _ in 0..50 {
            let ins = Arc::clone(&inside);
            let mx = Arc::clone(&max_inside);
            g.add_task(&[Dep::mutex(7)], move || {
                let now = ins.fetch_add(1, Ordering::SeqCst) + 1;
                mx.fetch_max(now, Ordering::SeqCst);
                std::thread::yield_now();
                ins.fetch_sub(1, Ordering::SeqCst);
            });
        }
        g.execute(&pool);
        assert_eq!(max_inside.load(Ordering::SeqCst), 1, "mutex tasks overlapped");
    }

    #[test]
    fn mutex_groups_with_disjoint_objects_run_in_parallel_eventually() {
        // Tasks on different mutex objects are unrelated; just verify
        // they all complete and that there is real available parallelism.
        let pool = ThreadPool::new(4);
        let count = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for i in 0..40 {
            let c = Arc::clone(&count);
            g.add_task(&[Dep::mutex(i % 8)], move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let stats = g.execute(&pool);
        assert_eq!(count.load(Ordering::SeqCst), 40);
        assert!(stats.max_ready >= 8);
    }

    #[test]
    fn multidependences_adjacency_pattern() {
        // The paper's pattern: one task per subdomain, mutexinoutset on
        // one object per adjacency edge. Adjacent tasks never overlap;
        // they all write to a shared array region guarded by that
        // exclusion — absence of lost updates proves the exclusion.
        let pool = ThreadPool::new(4);
        let n_sub = 16;
        // Ring adjacency: subdomain i adjacent to i-1, i+1. Edge object
        // id for (i, i+1) is i.
        let shared: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n_sub).map(|_| AtomicUsize::new(0)).collect());
        let mut g = TaskGraph::new();
        for rep in 0..8 {
            let _ = rep;
            for i in 0..n_sub {
                let left_edge = (i + n_sub - 1) % n_sub;
                let right_edge = i;
                let sh = Arc::clone(&shared);
                g.add_task(
                    &[Dep::mutex(left_edge), Dep::mutex(right_edge)],
                    move || {
                        // Non-atomic read-modify-write on own + right
                        // neighbor slot, safe only under exclusion.
                        let a = sh[i].load(Ordering::Relaxed);
                        let b = sh[(i + 1) % n_sub].load(Ordering::Relaxed);
                        std::thread::yield_now();
                        sh[i].store(a + 1, Ordering::Relaxed);
                        sh[(i + 1) % n_sub].store(b + 1, Ordering::Relaxed);
                    },
                );
            }
        }
        g.execute(&pool);
        // Each slot written by its own task and its left neighbor's task,
        // 8 reps each => 16 increments per slot, none lost.
        for s in shared.iter() {
            assert_eq!(s.load(Ordering::SeqCst), 16);
        }
    }

    #[test]
    fn in_after_mutex_group_waits_for_whole_group() {
        let pool = ThreadPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for _ in 0..10 {
            let d = Arc::clone(&done);
            g.add_task(&[Dep::mutex(0)], move || {
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        let d = Arc::clone(&done);
        let observed = Arc::new(AtomicUsize::new(0));
        let obs = Arc::clone(&observed);
        g.add_task(&[Dep::read(0)], move || {
            obs.store(d.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        g.execute(&pool);
        assert_eq!(observed.load(Ordering::SeqCst), 10, "reader ran before group finished");
    }

    /// Regression: a dependence list touching the same object twice
    /// (here inout + in on one object) must not create a self-edge —
    /// that would leave the task permanently unready and hang execution.
    #[test]
    fn same_object_twice_in_one_task_does_not_self_deadlock() {
        let pool = ThreadPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let mut g = TaskGraph::new();
        for combo in [
            vec![Dep::readwrite(0), Dep::read(0)],
            vec![Dep::write(1), Dep::mutex(1)],
            vec![Dep::mutex(2), Dep::readwrite(2)],
            vec![Dep::read(3), Dep::write(3), Dep::read(3)],
        ] {
            let r = Arc::clone(&ran);
            g.add_task(&combo, move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        let stats = g.execute(&pool);
        assert_eq!(ran.load(Ordering::SeqCst), 4);
        assert_eq!(stats.tasks_run, 4);
    }

    #[test]
    fn empty_graph() {
        let pool = ThreadPool::new(2);
        let g = TaskGraph::new();
        let stats = g.execute(&pool);
        assert_eq!(stats.tasks_run, 0);
    }

    #[test]
    fn war_ordering_write_after_read() {
        let pool = ThreadPool::new(4);
        let val = Arc::new(AtomicUsize::new(1));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            let v = Arc::clone(&val);
            let s = Arc::clone(&seen);
            g.add_task(&[Dep::read(0)], move || {
                s.lock().push(v.load(Ordering::SeqCst));
            });
        }
        let v = Arc::clone(&val);
        g.add_task(&[Dep::write(0)], move || v.store(2, Ordering::SeqCst));
        g.execute(&pool);
        assert_eq!(*seen.lock(), vec![1, 1, 1, 1], "readers must run before the writer");
    }
}
