//! PMPI-style interception hooks.
//!
//! The DLB library of the paper is *transparent to the application*: it
//! hooks the entry/exit of blocking MPI calls via the PMPI profiling
//! interface and lends/reclaims cores there (§3.2). `cfpd-simmpi`
//! reproduces that interception surface: every blocking wait inside a
//! communicator operation fires [`MpiHooks::on_block`] before parking
//! and [`MpiHooks::on_unblock`] after resuming.

/// Kind of blocking call being entered (mirrors the MPI entry points the
/// DLB PMPI layer intercepts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Blocking receive.
    Recv,
    /// Barrier wait.
    Barrier,
    /// Collective wait (reduce / gather / bcast internals).
    Collective,
}

/// Interception interface. Implementations must be cheap and re-entrant:
/// they are called from every rank thread on every blocking call.
///
/// The `on_send` / `on_timeout` / `on_rank_dead` methods default to
/// no-ops so existing hooks (DLB, counters) are unaffected; the chaos
/// layer ([`crate::fault::ChaosHooks`]) overrides them to inject its
/// seeded fault schedule and to route failure notifications.
pub trait MpiHooks: Send + Sync {
    /// The universe-global rank `rank` is about to block in `kind`.
    fn on_block(&self, rank: usize, kind: BlockKind);
    /// The universe-global rank `rank` resumed from a blocking call.
    fn on_unblock(&self, rank: usize, kind: BlockKind);
    /// Message `seq` on edge `src -> dest` (global ranks) of
    /// communicator `comm_id` is about to be enqueued; the returned
    /// action tells the fabric how to deliver it.
    fn on_send(
        &self,
        _comm_id: u64,
        _src: usize,
        _dest: usize,
        _tag: u64,
        _seq: u64,
    ) -> crate::fault::FaultAction {
        crate::fault::FaultAction::Deliver
    }
    /// Message `seq` on edge `src -> dest` (global ranks) of
    /// communicator `comm_id` was taken out of the destination inbox
    /// (`bytes` payload bytes). Fires on the receiving rank's thread at
    /// match time — the `t_recv` end of a happens-before edge; the
    /// trace layer pairs it with the `on_send` it saw earlier.
    fn on_msg_recv(
        &self,
        _comm_id: u64,
        _src: usize,
        _dest: usize,
        _tag: u64,
        _seq: u64,
        _bytes: usize,
    ) {
    }
    /// A timeout-carrying wait on rank `rank` expired without a match.
    fn on_timeout(&self, _rank: usize, _kind: BlockKind) {}
    /// Rank `rank` was declared dead (fail-silent crash).
    fn on_rank_dead(&self, _rank: usize) {}
}

/// No-op hooks (the default when DLB is disabled).
#[derive(Debug, Default)]
pub struct NoHooks;

impl MpiHooks for NoHooks {
    fn on_block(&self, _rank: usize, _kind: BlockKind) {}
    fn on_unblock(&self, _rank: usize, _kind: BlockKind) {}
}

/// Hooks that count block/unblock events — useful in tests and for the
/// communication statistics of the trace module.
#[derive(Debug, Default)]
pub struct CountingHooks {
    pub blocks: std::sync::atomic::AtomicUsize,
    pub unblocks: std::sync::atomic::AtomicUsize,
}

impl MpiHooks for CountingHooks {
    fn on_block(&self, _rank: usize, _kind: BlockKind) {
        self.blocks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    fn on_unblock(&self, _rank: usize, _kind: BlockKind) {
        self.unblocks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}
