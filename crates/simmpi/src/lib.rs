//! # cfpd-simmpi — a virtual MPI for single-process reproduction
//!
//! The paper's experiments run Alya with MPI across two cluster nodes.
//! This crate substitutes a *virtual cluster*: each MPI rank is an OS
//! thread, point-to-point messages are typed in-memory queues, and the
//! MPI collectives used by the simulation (barrier, allreduce, bcast,
//! gather, comm split) are implemented on top. Two properties of real
//! MPI that the paper's techniques depend on are preserved faithfully:
//!
//! 1. **Blocking semantics** — ranks genuinely park while waiting, and
//! 2. **PMPI interception** — every blocking entry/exit fires
//!    [`hooks::MpiHooks`], the surface the DLB library (crate
//!    `cfpd-dlb`) uses to lend and reclaim cores, exactly like the real
//!    DLB intercepts `MPI_Recv`/`MPI_Barrier`/collectives via PMPI.
//!
//! Tags at `u64::MAX - 5 ..= u64::MAX` are reserved for internal
//! collectives; user code should use small tags.

pub mod comm;
pub mod diag;
pub mod fault;
pub mod hooks;
pub mod nonblocking;
pub mod profile;
pub mod tracer;
pub mod universe;

pub use comm::{Comm, CommError, CrashUnwind, ReduceOp, DEADLOCK_TIMEOUT};
pub use diag::{DeadlockReport, RankState, RankWait, UniverseDiag, WaitInfo};
pub use fault::{ChaosHooks, CrashSpec, FaultAction, FaultConfig, FaultEvent, FaultEventKind, FaultPlan};
pub use nonblocking::Request;
pub use hooks::{BlockKind, CountingHooks, MpiHooks, NoHooks};
pub use profile::{ProfileHooks, RankProfile};
pub use tracer::{MsgSpan, TraceHooks, WaitSpan};
pub use universe::Universe;
