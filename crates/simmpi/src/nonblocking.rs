//! Nonblocking point-to-point operations (`MPI_Isend`/`MPI_Irecv`
//! analogues) and combined send-receive.
//!
//! Alya overlaps halo exchanges with computation using nonblocking MPI;
//! the coupled mode's velocity shipment is also naturally an `Isend`.
//! Requests must be completed with [`Request::wait`] (dropping an
//! unfinished receive request panics in debug builds, catching the
//! classic forgotten-wait bug).

use crate::comm::Comm;
use crate::hooks::BlockKind;
use std::sync::mpsc;

/// A pending nonblocking operation producing a `T`.
#[must_use = "requests must be completed with wait()"]
pub struct Request<T> {
    inner: RequestInner<T>,
}

enum RequestInner<T> {
    /// Send side: buffered sends complete immediately.
    Ready(Option<T>),
    /// Receive side: a helper thread parks in the matching recv.
    Pending {
        rx: mpsc::Receiver<T>,
        handle: Option<std::thread::JoinHandle<()>>,
    },
}

impl<T> Request<T> {
    /// Block until the operation completes and return its value.
    pub fn wait(mut self) -> T {
        match &mut self.inner {
            RequestInner::Ready(v) => v.take().expect("request waited twice"),
            RequestInner::Pending { rx, handle } => {
                let v = rx.recv().expect("request helper died");
                if let Some(h) = handle.take() {
                    let _ = h.join();
                }
                v
            }
        }
    }

    /// Non-destructive completion probe.
    pub fn test(&mut self) -> Option<T> {
        match &mut self.inner {
            RequestInner::Ready(v) => v.take(),
            RequestInner::Pending { rx, handle } => match rx.try_recv() {
                Ok(v) => {
                    if let Some(h) = handle.take() {
                        let _ = h.join();
                    }
                    Some(v)
                }
                Err(_) => None,
            },
        }
    }
}

impl Comm {
    /// Nonblocking send. Sends in this virtual MPI are buffered, so the
    /// request is complete immediately; the API exists so call sites
    /// read like their MPI counterparts.
    pub fn isend<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) -> Request<()> {
        self.send(dest, tag, value);
        Request { inner: RequestInner::Ready(Some(())) }
    }

    /// Nonblocking receive: a detached helper performs the matching
    /// blocking receive; `wait` joins it. The helper blocks with the
    /// same hook instrumentation as a plain `recv`, so DLB sees the
    /// block only when the caller actually waits... no — the helper
    /// blocks immediately, which models an eager-progress MPI. Callers
    /// that need lazy progress should use plain `recv`.
    pub fn irecv<T: Send + 'static>(&self, src: usize, tag: u64) -> Request<T> {
        let (tx, rx) = mpsc::channel();
        // Clone a lightweight handle to the same communicator state.
        let comm = self.clone_handle();
        let handle = std::thread::Builder::new()
            .name("irecv-helper".into())
            .spawn(move || {
                let v: T = comm.recv(src, tag);
                let _ = tx.send(v);
            })
            .expect("spawn irecv helper");
        Request { inner: RequestInner::Pending { rx, handle: Some(handle) } }
    }

    /// Combined blocking send + receive (deadlock-free pairwise
    /// exchange, the `MPI_Sendrecv` of halo swaps).
    pub fn sendrecv<T: Send + 'static, U: Send + 'static>(
        &self,
        dest: usize,
        send_tag: u64,
        value: T,
        src: usize,
        recv_tag: u64,
    ) -> U {
        self.send(dest, send_tag, value);
        self.recv(src, recv_tag)
    }

    /// Exclusive prefix sum (`MPI_Exscan` with sum): rank r receives the
    /// sum of values from ranks 0..r (0.0 on rank 0).
    pub fn exscan_sum(&self, value: f64) -> f64 {
        let all = self.allgather(value);
        all[..self.rank()].iter().sum()
    }

    /// All-to-all personalized exchange: `data[d]` goes to rank `d`;
    /// returns what every rank sent to us (indexed by source).
    pub fn alltoall<T: Send + 'static>(&self, data: Vec<T>) -> Vec<T> {
        assert_eq!(data.len(), self.size(), "alltoall needs one item per rank");
        const TAG: u64 = u64::MAX - 6;
        let me = self.rank();
        let mut keep: Option<T> = None;
        for (dest, item) in data.into_iter().enumerate() {
            if dest == me {
                keep = Some(item);
            } else {
                self.send(dest, TAG, item);
            }
        }
        let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
        out[me] = keep;
        for src in 0..self.size() {
            if src != me {
                out[src] = Some(self.recv(src, TAG));
            }
        }
        out.into_iter().map(Option::unwrap).collect()
    }

    /// Hook kind used by nonblocking helpers (exposed for tests).
    pub fn block_kind_recv() -> BlockKind {
        BlockKind::Recv
    }
}

#[cfg(test)]
mod tests {
    use crate::universe::Universe;

    #[test]
    fn isend_irecv_roundtrip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let req = comm.isend(1, 3, vec![1u32, 2, 3]);
                req.wait();
            } else {
                let req = comm.irecv::<Vec<u32>>(0, 3);
                assert_eq!(req.wait(), vec![1, 2, 3]);
            }
        });
    }

    #[test]
    fn irecv_overlaps_with_computation() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                comm.send(1, 0, 7u8);
            } else {
                let mut req = comm.irecv::<u8>(0, 0);
                // Overlapped "computation": the request is not yet done.
                assert!(req.test().is_none());
                assert_eq!(req.wait(), 7);
            }
        });
    }

    #[test]
    fn sendrecv_ring_exchange() {
        Universe::run(4, |comm| {
            let n = comm.size();
            let next = (comm.rank() + 1) % n;
            let prev = (comm.rank() + n - 1) % n;
            let got: usize = comm.sendrecv(next, 1, comm.rank(), prev, 1);
            assert_eq!(got, prev);
        });
    }

    #[test]
    fn exscan_prefix_sums() {
        Universe::run(4, |comm| {
            let pre = comm.exscan_sum((comm.rank() + 1) as f64);
            // rank r gets 1 + 2 + ... + r.
            let expect: f64 = (1..=comm.rank()).map(|x| x as f64).sum();
            assert_eq!(pre, expect);
        });
    }

    #[test]
    fn alltoall_permutes() {
        Universe::run(3, |comm| {
            let me = comm.rank();
            // Send (me * 10 + dest) to each dest.
            let data: Vec<usize> = (0..3).map(|d| me * 10 + d).collect();
            let got = comm.alltoall(data);
            for (src, v) in got.iter().enumerate() {
                assert_eq!(*v, src * 10 + me);
            }
        });
    }
}
