//! Communicators: typed point-to-point messaging and collectives over
//! ranks-as-threads.
//!
//! Semantics follow MPI where it matters for the reproduction:
//! `send` is asynchronous (buffered), `recv` blocks until a matching
//! (source, tag) message arrives, collectives block all participants,
//! and `split` creates disjoint sub-communicators — the mechanism the
//! coupled fluid/particle execution mode uses (Fig. 3).

use crate::hooks::{BlockKind, MpiHooks, NoHooks};
use cfpd_testkit::sync::{Condvar, Mutex};
use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

/// How long a blocking operation may wait before the universe declares a
/// deadlock (tests rely on this to fail fast instead of hanging).
pub const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(60);

type Payload = Box<dyn Any + Send>;

struct Msg {
    src: usize,
    tag: u64,
    payload: Payload,
}

#[derive(Default)]
struct Inbox {
    queue: Mutex<Vec<Msg>>,
    cv: Condvar,
}

/// Shared state of one communicator.
pub(crate) struct CommState {
    inboxes: Vec<Inbox>,
}

impl CommState {
    pub(crate) fn new(size: usize) -> Arc<CommState> {
        Arc::new(CommState { inboxes: (0..size).map(|_| Inbox::default()).collect() })
    }
}

/// A communicator handle held by one rank.
///
/// Cloneable only through [`Comm::split`]; each rank keeps exactly one
/// handle per communicator, mirroring MPI usage.
pub struct Comm {
    rank: usize,
    size: usize,
    /// Rank in the top-level universe (used for hook reporting so DLB
    /// can map blocked ranks to node-local core owners).
    global_rank: usize,
    state: Arc<CommState>,
    hooks: Arc<dyn MpiHooks>,
}

/// Reduction operators for the `allreduce` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        global_rank: usize,
        state: Arc<CommState>,
        hooks: Arc<dyn MpiHooks>,
    ) -> Comm {
        Comm { rank, size, global_rank, state, hooks }
    }

    /// Duplicate this handle (same communicator, same rank) — used by
    /// nonblocking helpers that park in a receive on another thread.
    pub(crate) fn clone_handle(&self) -> Comm {
        Comm {
            rank: self.rank,
            size: self.size,
            global_rank: self.global_rank,
            state: Arc::clone(&self.state),
            hooks: Arc::clone(&self.hooks),
        }
    }

    /// Standalone single-rank communicator (useful in unit tests of
    /// higher layers that need a `Comm` but no communication).
    pub fn solo() -> Comm {
        Comm::new(0, 1, 0, CommState::new(1), Arc::new(NoHooks))
    }

    /// This rank's id within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Rank id in the top-level universe.
    #[inline]
    pub fn global_rank(&self) -> usize {
        self.global_rank
    }

    /// Buffered asynchronous send of any `Send` value to `dest`.
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        let inbox = &self.state.inboxes[dest];
        inbox.queue.lock().push(Msg { src: self.rank, tag, payload: Box::new(value) });
        inbox.cv.notify_all();
    }

    /// Blocking receive of the next message from `src` with tag `tag`.
    /// Panics if the payload type does not match `T` (a programming
    /// error in the protocol) or on deadlock timeout.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let inbox = &self.state.inboxes[self.rank];
        let mut queue = inbox.queue.lock();
        let mut blocked = false;
        loop {
            if let Some(pos) = queue.iter().position(|m| m.src == src && m.tag == tag) {
                let msg = queue.remove(pos);
                drop(queue);
                if blocked {
                    self.hooks.on_unblock(self.global_rank, BlockKind::Recv);
                }
                return *msg.payload.downcast::<T>().unwrap_or_else(|_| {
                    panic!("rank {}: recv type mismatch from {src} tag {tag}", self.rank)
                });
            }
            if !blocked {
                blocked = true;
                self.hooks.on_block(self.global_rank, BlockKind::Recv);
            }
            if inbox.cv.wait_for(&mut queue, DEADLOCK_TIMEOUT).timed_out() {
                panic!(
                    "rank {}: deadlock waiting for message from {src} tag {tag}",
                    self.rank
                );
            }
        }
    }

    /// Barrier across all ranks of the communicator (dissemination over
    /// point-to-point messages; correctness over cleverness).
    pub fn barrier(&self) {
        self.barrier_tagged(u64::MAX - 1);
    }

    fn barrier_tagged(&self, tag: u64) {
        // Dissemination barrier: log2(size) rounds.
        let mut round = 1usize;
        while round < self.size {
            let dest = (self.rank + round) % self.size;
            let src = (self.rank + self.size - round) % self.size;
            self.send(dest, tag.wrapping_add(round as u64), ());
            self.recv::<()>(src, tag.wrapping_add(round as u64));
            round *= 2;
        }
    }

    /// All-reduce a scalar.
    pub fn allreduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        let mut buf = [value];
        self.allreduce_slice_f64(&mut buf, op);
        buf[0]
    }

    /// All-reduce a slice in place (every rank ends with the reduction).
    pub fn allreduce_slice_f64(&self, values: &mut [f64], op: ReduceOp) {
        const TAG: u64 = u64::MAX - 2;
        // Reduce to rank 0, then broadcast.
        if self.rank == 0 {
            for src in 1..self.size {
                let part: Vec<f64> = self.recv(src, TAG);
                assert_eq!(part.len(), values.len(), "allreduce length mismatch");
                for (v, p) in values.iter_mut().zip(part) {
                    *v = op.apply(*v, p);
                }
            }
            for dest in 1..self.size {
                self.send(dest, TAG, values.to_vec());
            }
        } else {
            self.send(0, TAG, values.to_vec());
            let result: Vec<f64> = self.recv(0, TAG);
            values.copy_from_slice(&result);
        }
    }

    /// Broadcast a cloneable value from `root` to every rank; each rank
    /// returns its copy.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        const TAG: u64 = u64::MAX - 3;
        if self.rank == root {
            let v = value.expect("root must provide the broadcast value");
            for dest in 0..self.size {
                if dest != root {
                    self.send(dest, TAG, v.clone());
                }
            }
            v
        } else {
            self.recv(root, TAG)
        }
    }

    /// Gather one value per rank at `root` (ordered by rank); non-roots
    /// get `None`.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        const TAG: u64 = u64::MAX - 4;
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            out[root] = Some(value);
            for src in 0..self.size {
                if src != root {
                    out[src] = Some(self.recv(src, TAG));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send(root, TAG, value);
            None
        }
    }

    /// All-gather: every rank receives the vector of all ranks' values.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.bcast(0, gathered)
    }

    /// Split into sub-communicators by `color`; ranks of equal color form
    /// a new communicator ordered by `key` (ties by old rank). All ranks
    /// must call `split` collectively.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        const TAG: u64 = u64::MAX - 5;
        // Rank 0 collects (color, key), forms groups, creates the shared
        // states and distributes (new_rank, new_size, Arc<CommState>).
        let pairs = self.gather(0, (color, key, self.rank));
        if self.rank == 0 {
            let mut pairs = pairs.unwrap();
            pairs.sort_by_key(|&(c, k, r)| (c, k, r));
            let mut i = 0usize;
            while i < pairs.len() {
                let c = pairs[i].0;
                let mut group = Vec::new();
                while i < pairs.len() && pairs[i].0 == c {
                    group.push(pairs[i].2);
                    i += 1;
                }
                let state = CommState::new(group.len());
                for (new_rank, &old_rank) in group.iter().enumerate() {
                    self.send(old_rank, TAG, (new_rank, group.len(), Arc::clone(&state)));
                }
            }
        }
        let (new_rank, new_size, state): (usize, usize, Arc<CommState>) = self.recv(0, TAG);
        Comm::new(new_rank, new_size, self.global_rank, state, Arc::clone(&self.hooks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn send_recv_roundtrip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                assert_eq!(v, vec![1.0, 2.0, 3.0]);
            }
        });
    }

    #[test]
    fn recv_matches_tag_out_of_order() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u32);
                comm.send(1, 2, 20u32);
            } else {
                // Receive tag 2 first even though tag 1 arrived earlier.
                let b: u32 = comm.recv(0, 2);
                let a: u32 = comm.recv(0, 1);
                assert_eq!((a, b), (10, 20));
            }
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        Universe::run(4, move |comm| {
            c2.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier, every rank must observe all 4 arrivals.
            assert_eq!(c2.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn allreduce_sum_max_min() {
        Universe::run(5, |comm| {
            let r = comm.rank() as f64;
            assert_eq!(comm.allreduce_f64(r, ReduceOp::Sum), 10.0);
            assert_eq!(comm.allreduce_f64(r, ReduceOp::Max), 4.0);
            assert_eq!(comm.allreduce_f64(r, ReduceOp::Min), 0.0);
        });
    }

    #[test]
    fn allreduce_slice() {
        Universe::run(3, |comm| {
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_slice_f64(&mut v, ReduceOp::Sum);
            assert_eq!(v, vec![3.0, 3.0]);
        });
    }

    #[test]
    fn bcast_from_nonzero_root() {
        Universe::run(4, |comm| {
            let v = if comm.rank() == 2 { Some(vec![9u8, 8]) } else { None };
            let got = comm.bcast(2, v);
            assert_eq!(got, vec![9, 8]);
        });
    }

    #[test]
    fn gather_and_allgather() {
        Universe::run(4, |comm| {
            let g = comm.gather(1, comm.rank() as u32 * 10);
            if comm.rank() == 1 {
                assert_eq!(g.unwrap(), vec![0, 10, 20, 30]);
            } else {
                assert!(g.is_none());
            }
            let all = comm.allgather(comm.rank() as u32);
            assert_eq!(all, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn split_groups_by_color() {
        Universe::run(6, |comm| {
            let color = comm.rank() % 2;
            let sub = comm.split(color, comm.rank());
            assert_eq!(sub.size(), 3);
            // Even ranks 0,2,4 -> new ranks 0,1,2; odds likewise.
            assert_eq!(sub.rank(), comm.rank() / 2);
            // Sub-communicator collectives stay within the group.
            let sum = sub.allreduce_f64(comm.rank() as f64, ReduceOp::Sum);
            let expected = if color == 0 { 0.0 + 2.0 + 4.0 } else { 1.0 + 3.0 + 5.0 };
            assert_eq!(sum, expected);
        });
    }

    #[test]
    fn solo_comm() {
        let c = Comm::solo();
        assert_eq!(c.size(), 1);
        assert_eq!(c.allreduce_f64(5.0, ReduceOp::Sum), 5.0);
        c.barrier();
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1u32);
            } else {
                let _: f64 = comm.recv(0, 0);
            }
        });
    }
}
