//! Communicators: typed point-to-point messaging and collectives over
//! ranks-as-threads.
//!
//! Semantics follow MPI where it matters for the reproduction:
//! `send` is asynchronous (buffered), `recv` blocks until a matching
//! (source, tag) message arrives, collectives block all participants,
//! and `split` creates disjoint sub-communicators — the mechanism the
//! coupled fluid/particle execution mode uses (Fig. 3).
//!
//! Failure-awareness (the chaos layer):
//!
//! * every message carries a per-(source, dest, tag)-stream **sequence
//!   number** and receivers consume a stream *strictly in sequence
//!   order*, waiting out any gap (a delayed or pending-redelivery
//!   message) — MPI's non-overtaking rule enforced structurally, so
//!   injected queue reordering and redelivered drops can never change
//!   what a receive returns, only when it returns;
//! * `send` consults [`MpiHooks::on_send`], the attachment point of the
//!   seeded fault plan ([`crate::fault`]);
//! * blocking waits sleep in short poll slices, registering what they
//!   wait on in the universe's [`UniverseDiag`]; a confirmed wedge
//!   yields a structured [`DeadlockReport`] instead of a hang, and the
//!   timeout-carrying variants (`recv_timeout`, `barrier_timeout`,
//!   `allreduce_slice_f64_timeout`) surface a [`CommError`] the caller
//!   can handle.

use crate::diag::{DeadlockReport, UniverseDiag, WaitInfo};
use crate::fault::FaultAction;
use crate::hooks::{BlockKind, MpiHooks, NoHooks};
use cfpd_testkit::sync::{Condvar, Mutex};
use std::any::Any;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a blocking operation may wait before the universe declares a
/// deadlock (tests rely on this to fail fast instead of hanging). The
/// wait-registry detector usually fires far sooner; this is the
/// backstop for waits it cannot see (helper threads).
pub const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(60);

/// Blocked ranks re-examine the world (deadline, deadlock verdict) at
/// this cadence. Wake-ups on message arrival are immediate via the
/// condvar; the slice only bounds detection latency.
const POLL_SLICE: Duration = Duration::from_millis(20);

/// Classify a blocking wait for telemetry attribution. Histograms are
/// per class, not per raw tag, so the metric name set stays bounded;
/// barrier waits are recognised by [`BlockKind`] (the dissemination
/// rounds mangle the reserved tag), collectives by their reserved tag.
fn record_wait(rank: usize, kind: BlockKind, tag: u64, ns: u64) {
    use cfpd_telemetry::observe;
    // Flight-recorder op codes: 1 barrier, 2 allreduce, 3 bcast,
    // 4 gather, 5 split, 0 user point-to-point.
    let op;
    if kind == BlockKind::Barrier {
        observe!("mpi.wait_ns.barrier", ns);
        op = 1;
    } else {
        match u64::MAX.wrapping_sub(tag) {
            2 => {
                observe!("mpi.wait_ns.allreduce", ns);
                op = 2;
            }
            3 => {
                observe!("mpi.wait_ns.bcast", ns);
                op = 3;
            }
            4 => {
                observe!("mpi.wait_ns.gather", ns);
                op = 4;
            }
            5 => {
                observe!("mpi.wait_ns.split", ns);
                op = 5;
            }
            _ => {
                observe!("mpi.wait_ns.user", ns);
                op = 0;
            }
        }
    }
    cfpd_flight::record(cfpd_flight::EventKind::CommWait, rank as u32, op, ns, 0);
}

/// Panic payload of a fail-silent rank crash: the rank's thread unwinds
/// with this instead of blocking forever once it has been declared dead
/// by the fault plan. [`crate::Universe::run_fallible`] classifies it.
pub struct CrashUnwind(pub usize);

/// Error of a timeout-carrying communication call.
#[derive(Debug)]
pub enum CommError {
    /// The deadline expired with no matching message. `in_flight` lists
    /// the `(src, tag)` pairs sitting unmatched in the inbox — the
    /// "what arrived instead" half of the diagnostic.
    Timeout {
        src: usize,
        tag: u64,
        waited: Duration,
        in_flight: Vec<(usize, u64)>,
    },
    /// The whole universe is wedged; the report names every rank's wait.
    Deadlock(Arc<DeadlockReport>),
}

fn fmt_in_flight(list: &[(usize, u64)]) -> String {
    list.iter()
        .map(|(s, t)| format!("{t} from {s}"))
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { src, tag, waited, in_flight } => write!(
                f,
                "timeout after {waited:?}: expected tag {tag} from rank {src}, in-flight tags: [{}]",
                fmt_in_flight(in_flight)
            ),
            CommError::Deadlock(report) => write!(f, "{}", report.render()),
        }
    }
}

impl std::error::Error for CommError {}

type Payload = Box<dyn Any + Send>;

struct Msg {
    src: usize,
    tag: u64,
    /// Per-(src, dest, tag)-stream sequence number; receivers consume a
    /// stream strictly in sequence order, so queue position never
    /// carries meaning and a gap (pending redelivery) is waited out
    /// instead of overtaken.
    seq: u64,
    payload: Payload,
}

#[derive(Default)]
struct InboxState {
    queue: Vec<Msg>,
    /// Next-expected sequence per (src, tag) stream.
    consumed: std::collections::HashMap<(usize, u64), u64>,
}

impl InboxState {
    /// Position of the next in-order message of stream `(src, tag)`, if
    /// it has arrived.
    fn match_pos(&self, src: usize, tag: u64) -> Option<usize> {
        let expected = *self.consumed.get(&(src, tag)).unwrap_or(&0);
        self.queue
            .iter()
            .position(|m| m.src == src && m.tag == tag && m.seq == expected)
    }

    /// Consume the message at `pos`, advancing its stream cursor.
    fn take(&mut self, pos: usize) -> Msg {
        let msg = self.queue.remove(pos);
        *self.consumed.entry((msg.src, msg.tag)).or_insert(0) += 1;
        msg
    }
}

#[derive(Default)]
struct Inbox {
    state: Mutex<InboxState>,
    cv: Condvar,
}

/// Shared state of one communicator.
pub(crate) struct CommState {
    /// Universe-unique id (0 = world; `split` allocates fresh ones) —
    /// keys the fault plan's per-message decisions.
    comm_id: u64,
    /// Map from communicator-local rank to universe-global rank.
    global_ranks: Vec<usize>,
    inboxes: Vec<Inbox>,
    /// Per-(src, dest, tag)-stream send counters.
    seqs: Mutex<std::collections::HashMap<(usize, usize, u64), u64>>,
}

impl CommState {
    pub(crate) fn new(global_ranks: Vec<usize>, comm_id: u64) -> Arc<CommState> {
        let n = global_ranks.len();
        Arc::new(CommState {
            comm_id,
            global_ranks,
            inboxes: (0..n).map(|_| Inbox::default()).collect(),
            seqs: Mutex::new(std::collections::HashMap::new()),
        })
    }

    /// Allocate the next sequence number of stream `(src, dest, tag)`.
    fn next_seq(&self, src: usize, dest: usize, tag: u64) -> u64 {
        let mut seqs = self.seqs.lock();
        let slot = seqs.entry((src, dest, tag)).or_insert(0);
        let seq = *slot;
        *slot += 1;
        seq
    }

    /// Enqueue at the back, or at a fault-chosen position for injected
    /// reordering (harmless: matching is by sequence, not position).
    fn enqueue(&self, dest: usize, msg: Msg, slot: Option<u64>, diag: &UniverseDiag) {
        let inbox = &self.inboxes[dest];
        let mut state = inbox.state.lock();
        match slot {
            Some(s) => {
                let pos = (s as usize) % (state.queue.len() + 1);
                state.queue.insert(pos, msg);
            }
            None => state.queue.push(msg),
        }
        drop(state);
        diag.bump_progress();
        inbox.cv.notify_all();
    }
}

/// A communicator handle held by one rank.
///
/// Cloneable only through [`Comm::split`]; each rank keeps exactly one
/// handle per communicator, mirroring MPI usage.
pub struct Comm {
    rank: usize,
    size: usize,
    /// Rank in the top-level universe (used for hook reporting so DLB
    /// can map blocked ranks to node-local core owners).
    global_rank: usize,
    state: Arc<CommState>,
    hooks: Arc<dyn MpiHooks>,
    diag: Arc<UniverseDiag>,
    /// Set on handles cloned for helper threads (`irecv`): helpers must
    /// not touch the rank's Running/Blocked registration — only the
    /// main thread's state feeds the deadlock detector.
    helper: bool,
}

/// Reduction operators for the `allreduce` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        global_rank: usize,
        state: Arc<CommState>,
        hooks: Arc<dyn MpiHooks>,
        diag: Arc<UniverseDiag>,
    ) -> Comm {
        Comm { rank, size, global_rank, state, hooks, diag, helper: false }
    }

    /// Duplicate this handle (same communicator, same rank) — used by
    /// nonblocking helpers that park in a receive on another thread.
    pub(crate) fn clone_handle(&self) -> Comm {
        Comm {
            rank: self.rank,
            size: self.size,
            global_rank: self.global_rank,
            state: Arc::clone(&self.state),
            hooks: Arc::clone(&self.hooks),
            diag: Arc::clone(&self.diag),
            helper: true,
        }
    }

    /// Standalone single-rank communicator (useful in unit tests of
    /// higher layers that need a `Comm` but no communication).
    pub fn solo() -> Comm {
        Comm::new(
            0,
            1,
            0,
            CommState::new(vec![0], 0),
            Arc::new(NoHooks),
            UniverseDiag::new(1),
        )
    }

    /// This rank's id within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Rank id in the top-level universe.
    #[inline]
    pub fn global_rank(&self) -> usize {
        self.global_rank
    }

    /// The universe's diagnostic registry (wait states, deadlock
    /// verdict) — exposed for tests and the chaos CLI.
    pub fn diag(&self) -> &Arc<UniverseDiag> {
        &self.diag
    }

    /// Buffered asynchronous send of any `Send` value to `dest`.
    ///
    /// The fault plan (if any) may delay, reorder, drop-and-redeliver
    /// or swallow the message here; a rank declared crashed sends
    /// nothing at all (fail-silent).
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        if self.diag.is_dead(self.global_rank) {
            return; // fail-silent: a dead rank's sends vanish
        }
        cfpd_telemetry::count!("mpi.msgs_sent");
        cfpd_telemetry::count!("mpi.bytes_sent", std::mem::size_of::<T>() as u64);
        let seq = self.state.next_seq(self.rank, dest, tag);
        let g_src = self.global_rank;
        let g_dest = self.state.global_ranks[dest];
        let msg = Msg { src: self.rank, tag, seq, payload: Box::new(value) };
        match self.hooks.on_send(self.state.comm_id, g_src, g_dest, tag, seq) {
            FaultAction::Deliver => self.state.enqueue(dest, msg, None, &self.diag),
            FaultAction::Delay { ms } => {
                // A slow link: the sender-side stall also delays every
                // later message on this edge, like a congested channel.
                std::thread::sleep(Duration::from_millis(ms));
                self.state.enqueue(dest, msg, None, &self.diag);
            }
            FaultAction::Reorder { slot } => {
                self.state.enqueue(dest, msg, Some(slot), &self.diag)
            }
            FaultAction::DropRedeliver { after_ms } => {
                // Held in flight: the deadlock detector must not fire
                // while the retransmission is pending.
                self.diag.chaos_hold();
                let state = Arc::clone(&self.state);
                let diag = Arc::clone(&self.diag);
                std::thread::Builder::new()
                    .name("chaos-redeliver".into())
                    .spawn(move || {
                        std::thread::sleep(Duration::from_millis(after_ms));
                        state.enqueue(dest, msg, None, &diag);
                        diag.chaos_release();
                    })
                    .expect("spawn chaos redelivery");
            }
            FaultAction::DropForever => {}
            FaultAction::SenderCrashed => {
                self.diag.mark_dead(g_src);
                self.hooks.on_rank_dead(g_src);
            }
        }
    }

    /// The `(src, tag)` pairs currently sitting unmatched in this
    /// rank's inbox (communicator-local source ranks).
    fn inbox_snapshot(&self) -> Vec<(usize, u64)> {
        self.state.inboxes[self.rank]
            .state
            .lock()
            .queue
            .iter()
            .map(|m| (m.src, m.tag))
            .collect()
    }

    /// The blocking core: wait for the *next in-sequence* message of
    /// stream `(src, tag)` until `deadline`, registering the wait with
    /// the universe's deadlock detector.
    fn recv_inner<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        kind: BlockKind,
        deadline: Instant,
    ) -> Result<T, CommError> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let inbox = &self.state.inboxes[self.rank];
        let start = Instant::now();
        let mut blocked = false;
        loop {
            let mut queue = inbox.state.lock();
            // Strict in-sequence consumption: MPI's non-overtaking rule,
            // immune to queue-order faults; a gap (delayed or
            // pending-redelivery message) is waited out, never skipped.
            if let Some(pos) = queue.match_pos(src, tag) {
                let msg = queue.take(pos);
                drop(queue);
                self.diag.bump_progress();
                cfpd_telemetry::count!("mpi.msgs_received");
                cfpd_telemetry::count!(
                    "mpi.bytes_received",
                    std::mem::size_of::<T>() as u64
                );
                self.hooks.on_msg_recv(
                    self.state.comm_id,
                    self.state.global_ranks[src],
                    self.global_rank,
                    tag,
                    msg.seq,
                    std::mem::size_of::<T>(),
                );
                if blocked {
                    if !self.helper {
                        self.diag.end_wait(self.global_rank);
                    }
                    self.hooks.on_unblock(self.global_rank, kind);
                    if cfpd_telemetry::enabled() {
                        let ns = u64::try_from(start.elapsed().as_nanos())
                            .unwrap_or(u64::MAX);
                        record_wait(self.global_rank, kind, tag, ns);
                    }
                }
                return Ok(*msg.payload.downcast::<T>().unwrap_or_else(|_| {
                    panic!("rank {}: recv type mismatch from {src} tag {tag}", self.rank)
                }));
            }
            if !self.helper && self.diag.is_dead(self.global_rank) {
                drop(queue);
                std::panic::panic_any(CrashUnwind(self.global_rank));
            }
            if let Some(report) = self.diag.deadlock() {
                return Err(CommError::Deadlock(report));
            }
            if !blocked {
                blocked = true;
                if !self.helper {
                    self.diag.begin_wait(
                        self.global_rank,
                        WaitInfo {
                            kind,
                            src: self.state.global_ranks[src],
                            tag,
                            comm_id: self.state.comm_id,
                        },
                    );
                }
                self.hooks.on_block(self.global_rank, kind);
            }
            let timed_out = inbox.cv.wait_for(&mut queue, POLL_SLICE).timed_out();
            if !timed_out {
                continue; // notified: re-check the queue immediately
            }
            let in_flight: Vec<(usize, u64)> =
                queue.queue.iter().map(|m| (m.src, m.tag)).collect();
            drop(queue);
            if !self.helper {
                self.diag.note_in_flight(
                    self.global_rank,
                    in_flight
                        .iter()
                        .map(|&(s, t)| (self.state.global_ranks[s], t))
                        .collect(),
                );
                if let Some(report) = self.diag.poll_deadlock() {
                    return Err(CommError::Deadlock(report));
                }
            }
            if Instant::now() >= deadline {
                if !self.helper {
                    self.diag.end_wait(self.global_rank);
                }
                self.hooks.on_timeout(self.global_rank, kind);
                self.hooks.on_unblock(self.global_rank, kind);
                cfpd_telemetry::count!("mpi.timeouts");
                return Err(CommError::Timeout { src, tag, waited: start.elapsed(), in_flight });
            }
        }
    }

    /// Blocking receive of the next message from `src` with tag `tag`.
    /// Panics if the payload type does not match `T` (a programming
    /// error in the protocol); a wedged universe or 60 s timeout panics
    /// with a "who waits on whom" diagnostic instead of hanging.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        match self.recv_inner(src, tag, BlockKind::Recv, Instant::now() + DEADLOCK_TIMEOUT) {
            Ok(v) => v,
            Err(e) => panic!(
                "rank {}: deadlock waiting for message from {src} tag {tag}; \
                 expected tag {tag} from rank {src}, in-flight tags: [{}]\n{e}",
                self.rank,
                fmt_in_flight(&self.inbox_snapshot())
            ),
        }
    }

    /// Receive with an explicit deadline: `Err(CommError::Timeout)`
    /// after `timeout` with no match, `Err(CommError::Deadlock)` if the
    /// universe wedges first.
    pub fn recv_timeout<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<T, CommError> {
        self.recv_inner(src, tag, BlockKind::Recv, Instant::now() + timeout)
    }

    /// Non-blocking probe-and-consume: the next in-sequence message of
    /// the stream if it has already arrived, `None` otherwise (including
    /// when only out-of-sequence successors are here). Never blocks,
    /// never fires block hooks (it still reports the delivery via
    /// [`MpiHooks::on_msg_recv`] so traces see every message match).
    pub fn try_recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Option<T> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        let mut queue = self.state.inboxes[self.rank].state.lock();
        let pos = queue.match_pos(src, tag)?;
        let msg = queue.take(pos);
        drop(queue);
        self.diag.bump_progress();
        self.hooks.on_msg_recv(
            self.state.comm_id,
            self.state.global_ranks[src],
            self.global_rank,
            tag,
            msg.seq,
            std::mem::size_of::<T>(),
        );
        Some(*msg.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!("rank {}: recv type mismatch from {src} tag {tag}", self.rank)
        }))
    }

    /// Internal receive for collective plumbing.
    fn recv_coll<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        kind: BlockKind,
        deadline: Instant,
    ) -> Result<T, CommError> {
        self.recv_inner(src, tag, kind, deadline)
    }

    /// Barrier across all ranks of the communicator (dissemination over
    /// point-to-point messages; correctness over cleverness).
    pub fn barrier(&self) {
        if let Err(e) = self.barrier_inner(Instant::now() + DEADLOCK_TIMEOUT) {
            panic!("rank {}: barrier failed: {e}", self.rank);
        }
    }

    /// Barrier with a deadline shared across all rounds.
    pub fn barrier_timeout(&self, timeout: Duration) -> Result<(), CommError> {
        self.barrier_inner(Instant::now() + timeout)
    }

    fn barrier_inner(&self, deadline: Instant) -> Result<(), CommError> {
        let tag = u64::MAX - 1;
        // Dissemination barrier: log2(size) rounds.
        let mut round = 1usize;
        while round < self.size {
            let dest = (self.rank + round) % self.size;
            let src = (self.rank + self.size - round) % self.size;
            self.send(dest, tag.wrapping_add(round as u64), ());
            self.recv_coll::<()>(src, tag.wrapping_add(round as u64), BlockKind::Barrier, deadline)?;
            round *= 2;
        }
        Ok(())
    }

    /// All-reduce a scalar.
    pub fn allreduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        let mut buf = [value];
        self.allreduce_slice_f64(&mut buf, op);
        buf[0]
    }

    /// All-reduce a scalar with a deadline.
    pub fn allreduce_f64_timeout(
        &self,
        value: f64,
        op: ReduceOp,
        timeout: Duration,
    ) -> Result<f64, CommError> {
        let mut buf = [value];
        self.allreduce_slice_f64_timeout(&mut buf, op, timeout)?;
        Ok(buf[0])
    }

    /// All-reduce a slice in place (every rank ends with the reduction).
    pub fn allreduce_slice_f64(&self, values: &mut [f64], op: ReduceOp) {
        if let Err(e) = self.allreduce_inner(values, op, Instant::now() + DEADLOCK_TIMEOUT) {
            panic!("rank {}: allreduce failed: {e}", self.rank);
        }
    }

    /// All-reduce a slice with a deadline shared across both phases.
    pub fn allreduce_slice_f64_timeout(
        &self,
        values: &mut [f64],
        op: ReduceOp,
        timeout: Duration,
    ) -> Result<(), CommError> {
        self.allreduce_inner(values, op, Instant::now() + timeout)
    }

    fn allreduce_inner(
        &self,
        values: &mut [f64],
        op: ReduceOp,
        deadline: Instant,
    ) -> Result<(), CommError> {
        const TAG: u64 = u64::MAX - 2;
        // Reduce to rank 0, then broadcast.
        if self.rank == 0 {
            for src in 1..self.size {
                let part: Vec<f64> =
                    self.recv_coll(src, TAG, BlockKind::Collective, deadline)?;
                assert_eq!(part.len(), values.len(), "allreduce length mismatch");
                for (v, p) in values.iter_mut().zip(part) {
                    *v = op.apply(*v, p);
                }
            }
            for dest in 1..self.size {
                self.send(dest, TAG, values.to_vec());
            }
        } else {
            self.send(0, TAG, values.to_vec());
            let result: Vec<f64> = self.recv_coll(0, TAG, BlockKind::Collective, deadline)?;
            values.copy_from_slice(&result);
        }
        Ok(())
    }

    /// Broadcast a cloneable value from `root` to every rank; each rank
    /// returns its copy.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        const TAG: u64 = u64::MAX - 3;
        if self.rank == root {
            let v = value.expect("root must provide the broadcast value");
            for dest in 0..self.size {
                if dest != root {
                    self.send(dest, TAG, v.clone());
                }
            }
            v
        } else {
            self.recv(root, TAG)
        }
    }

    /// Gather one value per rank at `root` (ordered by rank); non-roots
    /// get `None`.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        const TAG: u64 = u64::MAX - 4;
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            out[root] = Some(value);
            for src in 0..self.size {
                if src != root {
                    out[src] = Some(self.recv(src, TAG));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send(root, TAG, value);
            None
        }
    }

    /// All-gather: every rank receives the vector of all ranks' values.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.bcast(0, gathered)
    }

    /// Split into sub-communicators by `color`; ranks of equal color form
    /// a new communicator ordered by `key` (ties by old rank). All ranks
    /// must call `split` collectively.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        const TAG: u64 = u64::MAX - 5;
        // Rank 0 collects (color, key), forms groups, creates the shared
        // states and distributes (new_rank, new_size, Arc<CommState>).
        let pairs = self.gather(0, (color, key, self.rank));
        if self.rank == 0 {
            let mut pairs = pairs.unwrap();
            pairs.sort_by_key(|&(c, k, r)| (c, k, r));
            let mut i = 0usize;
            while i < pairs.len() {
                let c = pairs[i].0;
                let mut group = Vec::new();
                while i < pairs.len() && pairs[i].0 == c {
                    group.push(pairs[i].2);
                    i += 1;
                }
                let globals: Vec<usize> =
                    group.iter().map(|&old| self.state.global_ranks[old]).collect();
                let state = CommState::new(globals, self.diag.next_comm_id());
                for (new_rank, &old_rank) in group.iter().enumerate() {
                    self.send(old_rank, TAG, (new_rank, group.len(), Arc::clone(&state)));
                }
            }
        }
        let (new_rank, new_size, state): (usize, usize, Arc<CommState>) = self.recv(0, TAG);
        Comm::new(
            new_rank,
            new_size,
            self.global_rank,
            state,
            Arc::clone(&self.hooks),
            Arc::clone(&self.diag),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn send_recv_roundtrip() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0f64, 2.0, 3.0]);
            } else {
                let v: Vec<f64> = comm.recv(0, 7);
                assert_eq!(v, vec![1.0, 2.0, 3.0]);
            }
        });
    }

    #[test]
    fn recv_matches_tag_out_of_order() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u32);
                comm.send(1, 2, 20u32);
            } else {
                // Receive tag 2 first even though tag 1 arrived earlier.
                let b: u32 = comm.recv(0, 2);
                let a: u32 = comm.recv(0, 1);
                assert_eq!((a, b), (10, 20));
            }
        });
    }

    #[test]
    fn recv_consumes_same_stream_in_send_order_despite_queue_order() {
        // Messages on one (src, tag) stream must come out in send order
        // even if the queue is physically scrambled — the non-overtaking
        // guarantee that makes reorder faults physics-invisible.
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u32 {
                    comm.send(1, 4, i);
                }
            } else {
                std::thread::sleep(Duration::from_millis(20));
                {
                    // Scramble the physical queue order.
                    let mut q = comm.state.inboxes[1].state.lock();
                    q.queue.reverse();
                }
                for i in 0..10u32 {
                    assert_eq!(comm.recv::<u32>(0, 4), i);
                }
            }
        });
    }

    #[test]
    fn try_recv_returns_none_then_some() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let _: () = comm.recv(1, 9);
                comm.send(1, 3, 5u8);
            } else {
                assert_eq!(comm.try_recv::<u8>(0, 3), None);
                comm.send(0, 9, ());
                let mut got = None;
                while got.is_none() {
                    got = comm.try_recv::<u8>(0, 3);
                }
                assert_eq!(got, Some(5));
            }
        });
    }

    #[test]
    fn recv_timeout_reports_in_flight_tags() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 8, 1u8); // wrong tag on purpose
                let _: () = comm.recv(1, 99);
            } else {
                std::thread::sleep(Duration::from_millis(10));
                let err = comm
                    .recv_timeout::<u8>(0, 42, Duration::from_millis(120))
                    .unwrap_err();
                match err {
                    CommError::Timeout { src, tag, in_flight, .. } => {
                        assert_eq!((src, tag), (0, 42));
                        assert_eq!(in_flight, vec![(0, 8)]);
                    }
                    other => panic!("expected timeout, got {other}"),
                }
                // The mis-tagged message is still consumable afterwards.
                assert_eq!(comm.recv::<u8>(0, 8), 1);
                comm.send(0, 99, ());
            }
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        Universe::run(4, move |comm| {
            c2.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier, every rank must observe all 4 arrivals.
            assert_eq!(c2.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn allreduce_sum_max_min() {
        Universe::run(5, |comm| {
            let r = comm.rank() as f64;
            assert_eq!(comm.allreduce_f64(r, ReduceOp::Sum), 10.0);
            assert_eq!(comm.allreduce_f64(r, ReduceOp::Max), 4.0);
            assert_eq!(comm.allreduce_f64(r, ReduceOp::Min), 0.0);
        });
    }

    #[test]
    fn allreduce_slice() {
        Universe::run(3, |comm| {
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_slice_f64(&mut v, ReduceOp::Sum);
            assert_eq!(v, vec![3.0, 3.0]);
        });
    }

    #[test]
    fn bcast_from_nonzero_root() {
        Universe::run(4, |comm| {
            let v = if comm.rank() == 2 { Some(vec![9u8, 8]) } else { None };
            let got = comm.bcast(2, v);
            assert_eq!(got, vec![9, 8]);
        });
    }

    #[test]
    fn gather_and_allgather() {
        Universe::run(4, |comm| {
            let g = comm.gather(1, comm.rank() as u32 * 10);
            if comm.rank() == 1 {
                assert_eq!(g.unwrap(), vec![0, 10, 20, 30]);
            } else {
                assert!(g.is_none());
            }
            let all = comm.allgather(comm.rank() as u32);
            assert_eq!(all, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn split_groups_by_color() {
        Universe::run(6, |comm| {
            let color = comm.rank() % 2;
            let sub = comm.split(color, comm.rank());
            assert_eq!(sub.size(), 3);
            // Even ranks 0,2,4 -> new ranks 0,1,2; odds likewise.
            assert_eq!(sub.rank(), comm.rank() / 2);
            // Sub-communicator collectives stay within the group.
            let sum = sub.allreduce_f64(comm.rank() as f64, ReduceOp::Sum);
            let expected = if color == 0 { 0.0 + 2.0 + 4.0 } else { 1.0 + 3.0 + 5.0 };
            assert_eq!(sum, expected);
        });
    }

    #[test]
    fn solo_comm() {
        let c = Comm::solo();
        assert_eq!(c.size(), 1);
        assert_eq!(c.allreduce_f64(5.0, ReduceOp::Sum), 5.0);
        c.barrier();
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1u32);
            } else {
                let _: f64 = comm.recv(0, 0);
            }
        });
    }

    #[test]
    #[should_panic(expected = "in-flight tags")]
    fn recv_never_sent_tag_fails_fast_with_diagnostic() {
        // Satellite bugfix: a mistagged recv must fail with the
        // "expected tag X from rank Y, in-flight tags: [...]" report,
        // quickly (deadlock detector), not after a 60 s hang.
        let t0 = Instant::now();
        let result = std::panic::catch_unwind(|| {
            Universe::run(2, |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 8, 1u8);
                } else {
                    let _: u8 = comm.recv(0, 42); // nobody sends tag 42
                }
            });
        });
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "diagnosis took {:?}, should be sub-second",
            t0.elapsed()
        );
        std::panic::resume_unwind(result.unwrap_err());
    }
}
