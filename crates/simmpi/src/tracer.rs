//! Trace-recording hooks: the Extrae of the virtual cluster.
//!
//! [`TraceHooks`] sits outermost on the PMPI-style hook chain
//! (tracer → chaos → DLB), observing every blocking entry/exit and
//! every message send/match, and forwarding each call to the inner
//! layer unchanged. It records, per universe-global rank:
//!
//! * **wait intervals** — `[on_block, on_unblock)` spans of the rank's
//!   main thread, with nesting collapsed by a depth counter so a
//!   re-entrant block (a collective built on recv) yields one interval;
//! * **message records** — each `on_send` stamps `t_send` keyed by
//!   `(comm_id, src, tag, seq)` in the *destination* rank's shard; the
//!   matching `on_msg_recv` (which fires on the receiving thread) pops
//!   it and emits a complete `(src, dst, tag, bytes, t_send, t_recv)`
//!   edge — the happens-before arrows of the critical-path analysis.
//!
//! State is sharded per rank behind its own mutex (the only cross-rank
//! touch is a sender stamping the destination's pending map), and the
//! drain methods merge shards deterministically in rank order. All
//! timestamps are seconds since the epoch supplied at construction, so
//! the caller can share one clock between phase records, wait records
//! and message records.

use crate::fault::FaultAction;
use crate::hooks::{BlockKind, MpiHooks};
use cfpd_testkit::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One completed wait interval: `(rank, t_start, t_end)`.
pub type WaitSpan = (usize, f64, f64);

/// One matched message: `(src, dst, tag, bytes, t_send, t_recv)`.
pub type MsgSpan = (usize, usize, u64, usize, f64, f64);

#[derive(Default)]
struct RankShard {
    /// Nesting depth of blocking calls on this rank's thread.
    depth: usize,
    /// Start of the outermost in-progress block.
    wait_start: f64,
    waits: Vec<(f64, f64)>,
    /// `(comm_id, global_src, tag, seq)` → `t_send` for messages whose
    /// receive has not matched yet (this rank is the destination).
    pending: HashMap<(u64, usize, u64, u64), f64>,
    msgs: Vec<MsgSpan>,
}

/// Recording hook layer; see module docs.
pub struct TraceHooks {
    inner: Arc<dyn MpiHooks>,
    epoch: Instant,
    shards: Vec<Mutex<RankShard>>,
}

impl TraceHooks {
    /// `num_ranks` universe-global ranks, timestamps relative to
    /// `epoch`, forwarding every call to `inner`.
    pub fn new(num_ranks: usize, epoch: Instant, inner: Arc<dyn MpiHooks>) -> TraceHooks {
        TraceHooks {
            inner,
            epoch,
            shards: (0..num_ranks).map(|_| Mutex::new(RankShard::default())).collect(),
        }
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Completed wait intervals, rank-major then time order.
    pub fn drain_waits(&self) -> Vec<WaitSpan> {
        let mut out = Vec::new();
        for (rank, shard) in self.shards.iter().enumerate() {
            let mut s = shard.lock();
            for (a, b) in s.waits.drain(..) {
                out.push((rank, a, b));
            }
        }
        out
    }

    /// Matched message edges, destination-rank-major then receive order.
    pub fn drain_msgs(&self) -> Vec<MsgSpan> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut s = shard.lock();
            out.extend(s.msgs.drain(..));
        }
        out
    }
}

impl MpiHooks for TraceHooks {
    fn on_block(&self, rank: usize, kind: BlockKind) {
        if let Some(shard) = self.shards.get(rank) {
            let t = self.now();
            let mut s = shard.lock();
            if s.depth == 0 {
                s.wait_start = t;
            }
            s.depth += 1;
        }
        self.inner.on_block(rank, kind);
    }

    fn on_unblock(&self, rank: usize, kind: BlockKind) {
        // Inner first, so the DLB reclaim timestamp precedes the wait
        // interval's close — matching the real PMPI exit order.
        self.inner.on_unblock(rank, kind);
        if let Some(shard) = self.shards.get(rank) {
            let t = self.now();
            let mut s = shard.lock();
            if s.depth > 0 {
                s.depth -= 1;
                if s.depth == 0 {
                    let start = s.wait_start;
                    s.waits.push((start, t));
                }
            }
        }
    }

    fn on_send(
        &self,
        comm_id: u64,
        src: usize,
        dest: usize,
        tag: u64,
        seq: u64,
    ) -> FaultAction {
        if let Some(shard) = self.shards.get(dest) {
            let t = self.now();
            shard.lock().pending.insert((comm_id, src, tag, seq), t);
        }
        self.inner.on_send(comm_id, src, dest, tag, seq)
    }

    fn on_msg_recv(
        &self,
        comm_id: u64,
        src: usize,
        dest: usize,
        tag: u64,
        seq: u64,
        bytes: usize,
    ) {
        if let Some(shard) = self.shards.get(dest) {
            let t_recv = self.now();
            let mut s = shard.lock();
            // A send stamped before the tracer was installed (or a
            // redelivered drop) has no pending entry; collapse the edge
            // to a point at t_recv rather than losing it.
            let t_send =
                s.pending.remove(&(comm_id, src, tag, seq)).unwrap_or(t_recv);
            s.msgs.push((src, dest, tag, bytes, t_send, t_recv));
        }
        self.inner.on_msg_recv(comm_id, src, dest, tag, seq, bytes);
    }

    fn on_timeout(&self, rank: usize, kind: BlockKind) {
        self.inner.on_timeout(rank, kind);
    }

    fn on_rank_dead(&self, rank: usize) {
        self.inner.on_rank_dead(rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;
    use crate::universe::Universe;

    #[test]
    fn block_unblock_nesting_yields_one_interval() {
        let h = TraceHooks::new(1, Instant::now(), Arc::new(NoHooks));
        h.on_block(0, BlockKind::Collective);
        h.on_block(0, BlockKind::Recv);
        h.on_unblock(0, BlockKind::Recv);
        h.on_unblock(0, BlockKind::Collective);
        let waits = h.drain_waits();
        assert_eq!(waits.len(), 1);
        let (rank, a, b) = waits[0];
        assert_eq!(rank, 0);
        assert!(b >= a);
    }

    #[test]
    fn send_recv_produces_a_happens_before_edge() {
        let h = TraceHooks::new(2, Instant::now(), Arc::new(NoHooks));
        let a = h.on_send(1, 0, 1, 42, 0);
        assert_eq!(a, FaultAction::Deliver);
        h.on_msg_recv(1, 0, 1, 42, 0, 24);
        let msgs = h.drain_msgs();
        assert_eq!(msgs.len(), 1);
        let (src, dst, tag, bytes, ts, tr) = msgs[0];
        assert_eq!((src, dst, tag, bytes), (0, 1, 42, 24));
        assert!(tr >= ts);
        // Drained: a second drain is empty.
        assert!(h.drain_msgs().is_empty());
    }

    #[test]
    fn unmatched_recv_falls_back_to_point_edge() {
        let h = TraceHooks::new(2, Instant::now(), Arc::new(NoHooks));
        h.on_msg_recv(1, 0, 1, 7, 3, 8);
        let msgs = h.drain_msgs();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].4, msgs[0].5, "t_send collapses to t_recv");
    }

    #[test]
    fn live_universe_traffic_is_recorded() {
        let h = Arc::new(TraceHooks::new(2, Instant::now(), Arc::new(NoHooks)));
        let h2 = Arc::clone(&h);
        Universe::run_with_hooks(2, h2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1.0f64; 4]);
                let _: u8 = comm.recv(1, 6);
            } else {
                let _: Vec<f64> = comm.recv(0, 5);
                comm.send(0, 6, 1u8);
            }
            comm.barrier();
        });
        let msgs = h.drain_msgs();
        // 2 user messages + barrier dissemination traffic.
        assert!(msgs.len() >= 2, "messages: {msgs:?}");
        assert!(msgs.iter().any(|m| m.2 == 5 && m.0 == 0 && m.1 == 1));
        assert!(msgs.iter().any(|m| m.2 == 6 && m.0 == 1 && m.1 == 0));
        for &(_, _, _, _, ts, tr) in &msgs {
            assert!(tr >= ts, "recv before send");
        }
        // Rank 1's first recv blocked (rank 0 sends immediately, but
        // rank 1 may still win the race) — at minimum the barrier
        // produced some wait on one of the ranks, or none if perfectly
        // raced; just check invariants on whatever was recorded.
        for &(r, a, b) in &h.drain_waits() {
            assert!(r < 2 && b >= a);
        }
    }
}
