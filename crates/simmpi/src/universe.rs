//! The virtual cluster: spawns ranks as OS threads and wires them to a
//! world communicator plus a shared diagnostic registry (wait states,
//! deadlock detection, crash bookkeeping).

use crate::comm::{Comm, CommState, CrashUnwind};
use crate::diag::UniverseDiag;
use crate::hooks::{MpiHooks, NoHooks};
use std::sync::Arc;

/// Entry point of the virtual MPI world.
///
/// ```
/// use cfpd_simmpi::{Universe, ReduceOp};
/// let sums = Universe::run(4, |comm| {
///     comm.allreduce_f64(comm.rank() as f64, ReduceOp::Sum)
/// });
/// assert!(sums.iter().all(|&s| s == 6.0));
/// ```
pub struct Universe;

/// Marks the rank Finished on scope exit — including panic unwinds —
/// so the deadlock detector knows this rank can no longer send.
/// `mark_finished` is a no-op for ranks already declared Dead.
struct FinishGuard {
    diag: Arc<UniverseDiag>,
    rank: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.diag.mark_finished(self.rank);
    }
}

impl Universe {
    /// Run `size` ranks, each executing `f` with its world communicator
    /// on a dedicated thread. Returns the per-rank return values, rank
    /// order. Panics (with the rank id) if any rank panics.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Self::run_with_hooks(size, Arc::new(NoHooks), f)
    }

    /// Like [`Universe::run`] but with PMPI-style interception hooks
    /// (the attachment point for the DLB library and the chaos layer).
    pub fn run_with_hooks<T, F>(size: usize, hooks: Arc<dyn MpiHooks>, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Self::run_fallible(size, hooks, f)
            .into_iter()
            .enumerate()
            .map(|(rank, r)| match r {
                Ok(v) => v,
                Err(msg) => panic!("rank {rank} panicked: {msg}"),
            })
            .collect()
    }

    /// Failure-tolerant variant: each rank's outcome is returned as a
    /// `Result` — `Err` carries the panic message, the rendered
    /// deadlock report, or the crash notice for ranks the fault plan
    /// killed — so chaos runs can inspect partial results instead of
    /// unwinding the caller.
    pub fn run_fallible<T, F>(
        size: usize,
        hooks: Arc<dyn MpiHooks>,
        f: F,
    ) -> Vec<Result<T, String>>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        assert!(size >= 1, "universe needs at least one rank");
        let diag = UniverseDiag::new(size);
        let state = CommState::new((0..size).collect(), 0);
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let comm = Comm::new(
                rank,
                size,
                rank,
                Arc::clone(&state),
                Arc::clone(&hooks),
                Arc::clone(&diag),
            );
            let f = Arc::clone(&f);
            let guard_diag = Arc::clone(&diag);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn(move || {
                        let _finish = FinishGuard { diag: guard_diag, rank };
                        f(comm)
                    })
                    .expect("spawn rank thread"),
            );
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => Ok(v),
                Err(e) => {
                    if let Some(CrashUnwind(r)) = e.downcast_ref::<CrashUnwind>() {
                        Err(format!("rank {r} crashed (fail-silent)"))
                    } else {
                        let msg = e
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| e.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        Err(msg.to_string())
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ChaosHooks, CrashSpec, FaultConfig, FaultPlan};
    use crate::hooks::CountingHooks;
    use std::sync::atomic::Ordering;

    #[test]
    fn ranks_return_values_in_rank_order() {
        let out = Universe::run(5, |comm| comm.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked: boom")]
    fn rank_panic_propagates_with_rank_id() {
        Universe::run(3, |comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn hooks_fire_on_blocking_recv() {
        let hooks = Arc::new(CountingHooks::default());
        let h2 = Arc::clone(&hooks);
        Universe::run_with_hooks(2, h2, |comm| {
            if comm.rank() == 0 {
                // Delay so rank 1 definitely blocks.
                std::thread::sleep(std::time::Duration::from_millis(30));
                comm.send(1, 0, 42u32);
            } else {
                let v: u32 = comm.recv(0, 0);
                assert_eq!(v, 42);
            }
        });
        assert_eq!(hooks.blocks.load(Ordering::SeqCst), 1);
        assert_eq!(hooks.unblocks.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn no_block_when_message_already_there() {
        let hooks = Arc::new(CountingHooks::default());
        let h2 = Arc::clone(&hooks);
        Universe::run_with_hooks(2, h2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1u8);
            } else {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let _: u8 = comm.recv(0, 0);
            }
        });
        assert_eq!(hooks.blocks.load(Ordering::SeqCst), 0, "recv should not have blocked");
    }

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |comm| {
            comm.barrier();
            comm.allreduce_f64(3.0, crate::ReduceOp::Sum)
        });
        assert_eq!(out, vec![3.0]);
    }

    #[test]
    fn many_ranks_oversubscribed() {
        // More ranks than cores must still complete (threads, not spins).
        let out = Universe::run(32, |comm| {
            let s = comm.allreduce_f64(1.0, crate::ReduceOp::Sum);
            s as usize
        });
        assert!(out.iter().all(|&s| s == 32));
    }

    #[test]
    fn run_fallible_reports_panics_without_unwinding() {
        let out = Universe::run_fallible(3, Arc::new(NoHooks), |comm| {
            if comm.rank() == 1 {
                panic!("bad rank");
            }
            comm.rank()
        });
        assert_eq!(out[0], Ok(0));
        assert!(out[1].as_ref().unwrap_err().contains("bad rank"));
        assert_eq!(out[2], Ok(2));
    }

    #[test]
    fn crashed_rank_unwinds_and_peers_get_deadlock_report() {
        // Rank 1 crashes after its first send; rank 0's second recv can
        // never be satisfied → deadlock report naming the dead rank.
        let cfg = FaultConfig {
            crash: Some(CrashSpec { rank: 1, after_sends: 1 }),
            ..FaultConfig::quiet(0)
        };
        let chaos = ChaosHooks::new(2, FaultPlan::new(cfg), Arc::new(NoHooks) as _);
        let out = Universe::run_fallible(2, chaos, |comm| {
            if comm.rank() == 1 {
                comm.send(0, 1, 10u32); // delivered
                comm.send(0, 2, 20u32); // swallowed: crash point
                // The crashed rank unwinds at its next blocking call.
                let _: u32 = comm.recv(0, 3);
                unreachable!("dead rank must not pass recv");
            } else {
                let a: u32 = comm.recv(1, 1);
                assert_eq!(a, 10);
                let _: u32 = comm.recv(1, 2); // never arrives
            }
            0u32
        });
        let e0 = out[0].as_ref().unwrap_err();
        assert!(e0.contains("DEADLOCK"), "rank 0 error: {e0}");
        assert!(e0.contains("CRASHED"), "rank 0 error: {e0}");
        let e1 = out[1].as_ref().unwrap_err();
        assert!(e1.contains("crashed (fail-silent)"), "rank 1 error: {e1}");
    }
}
