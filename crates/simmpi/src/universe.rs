//! The virtual cluster: spawns ranks as OS threads and wires them to a
//! world communicator.

use crate::comm::{Comm, CommState};
use crate::hooks::{MpiHooks, NoHooks};
use std::sync::Arc;

/// Entry point of the virtual MPI world.
///
/// ```
/// use cfpd_simmpi::{Universe, ReduceOp};
/// let sums = Universe::run(4, |comm| {
///     comm.allreduce_f64(comm.rank() as f64, ReduceOp::Sum)
/// });
/// assert!(sums.iter().all(|&s| s == 6.0));
/// ```
pub struct Universe;

impl Universe {
    /// Run `size` ranks, each executing `f` with its world communicator
    /// on a dedicated thread. Returns the per-rank return values, rank
    /// order. Panics (with the rank id) if any rank panics.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Self::run_with_hooks(size, Arc::new(NoHooks), f)
    }

    /// Like [`Universe::run`] but with PMPI-style interception hooks
    /// (the attachment point for the DLB library).
    pub fn run_with_hooks<T, F>(size: usize, hooks: Arc<dyn MpiHooks>, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        assert!(size >= 1, "universe needs at least one rank");
        let state = CommState::new(size);
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let comm = Comm::new(rank, size, rank, Arc::clone(&state), Arc::clone(&hooks));
            let f = Arc::clone(&f);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn(move || f(comm))
                    .expect("spawn rank thread"),
            );
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(v) => v,
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!("rank {rank} panicked: {msg}");
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::CountingHooks;
    use std::sync::atomic::Ordering;

    #[test]
    fn ranks_return_values_in_rank_order() {
        let out = Universe::run(5, |comm| comm.rank() * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked: boom")]
    fn rank_panic_propagates_with_rank_id() {
        Universe::run(3, |comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn hooks_fire_on_blocking_recv() {
        let hooks = Arc::new(CountingHooks::default());
        let h2 = Arc::clone(&hooks);
        Universe::run_with_hooks(2, h2, |comm| {
            if comm.rank() == 0 {
                // Delay so rank 1 definitely blocks.
                std::thread::sleep(std::time::Duration::from_millis(30));
                comm.send(1, 0, 42u32);
            } else {
                let v: u32 = comm.recv(0, 0);
                assert_eq!(v, 42);
            }
        });
        assert_eq!(hooks.blocks.load(Ordering::SeqCst), 1);
        assert_eq!(hooks.unblocks.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn no_block_when_message_already_there() {
        let hooks = Arc::new(CountingHooks::default());
        let h2 = Arc::clone(&hooks);
        Universe::run_with_hooks(2, h2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1u8);
            } else {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let _: u8 = comm.recv(0, 0);
            }
        });
        assert_eq!(hooks.blocks.load(Ordering::SeqCst), 0, "recv should not have blocked");
    }

    #[test]
    fn single_rank_universe() {
        let out = Universe::run(1, |comm| {
            comm.barrier();
            comm.allreduce_f64(3.0, crate::ReduceOp::Sum)
        });
        assert_eq!(out, vec![3.0]);
    }

    #[test]
    fn many_ranks_oversubscribed() {
        // More ranks than cores must still complete (threads, not spins).
        let out = Universe::run(32, |comm| {
            let s = comm.allreduce_f64(1.0, crate::ReduceOp::Sum);
            s as usize
        });
        assert!(out.iter().all(|&s| s == 32));
    }
}
