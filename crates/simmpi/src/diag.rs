//! Universe-wide wait registry and deadlock detection.
//!
//! Every rank registers what it is blocked on (receive source + tag,
//! barrier, collective) before sleeping on its inbox condvar. A global
//! progress counter is bumped on every enqueue and every consume, and
//! chaos redeliveries in flight hold a pending count. When *all* ranks
//! are blocked (or finished/dead), nothing is pending, and the progress
//! counter stays frozen across a grace period, the universe is wedged:
//! the first rank to confirm it builds a [`DeadlockReport`] — a
//! per-rank "who waits on whom" table — and every blocked rank unwinds
//! with it instead of hanging CI forever.
//!
//! False positives are impossible by construction: a message enqueued
//! between the first and second look bumps `progress`, which disarms
//! the candidate verdict; a pending chaos redelivery keeps the
//! detector off entirely.

use crate::hooks::BlockKind;
use cfpd_testkit::sync::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lifecycle state of one rank's main thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankState {
    Running,
    Blocked,
    Finished,
    Dead,
}

/// What a blocked rank is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitInfo {
    pub kind: BlockKind,
    /// Global rank of the expected sender (meaningful for `Recv`; for
    /// barriers/collectives it names the current partner edge).
    pub src: usize,
    pub tag: u64,
    pub comm_id: u64,
}

/// One line of the deadlock report.
#[derive(Debug, Clone, PartialEq)]
pub struct RankWait {
    pub rank: usize,
    pub state: RankState,
    pub wait: Option<WaitInfo>,
    /// Tags currently sitting unmatched in this rank's inbox, as
    /// `(src, tag)` pairs — the "what arrived instead" half of the
    /// diagnostic.
    pub in_flight: Vec<(usize, u64)>,
}

/// Structured "who waits on whom" diagnostic produced when the
/// universe wedges. Rendered instead of hanging.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockReport {
    pub ranks: Vec<RankWait>,
    pub pending_redeliveries: usize,
}

impl DeadlockReport {
    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("DEADLOCK: all ranks blocked, no messages in flight\n");
        for r in &self.ranks {
            let line = match (&r.state, &r.wait) {
                (RankState::Blocked, Some(w)) => {
                    let what = match w.kind {
                        BlockKind::Recv => format!(
                            "waits for tag {} from rank {} (comm {})",
                            w.tag, w.src, w.comm_id
                        ),
                        BlockKind::Barrier => format!(
                            "waits in barrier for rank {} (comm {})",
                            w.src, w.comm_id
                        ),
                        BlockKind::Collective => format!(
                            "waits in collective for rank {} tag {} (comm {})",
                            w.src, w.tag, w.comm_id
                        ),
                    };
                    let inflight = if r.in_flight.is_empty() {
                        "in-flight tags: []".to_string()
                    } else {
                        format!(
                            "in-flight tags: [{}]",
                            r.in_flight
                                .iter()
                                .map(|(s, t)| format!("{t} from {s}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    };
                    format!("  rank {}: {what}; {inflight}", r.rank)
                }
                (RankState::Dead, _) => format!("  rank {}: CRASHED (fail-silent)", r.rank),
                (RankState::Finished, _) => format!("  rank {}: finished", r.rank),
                (state, _) => format!("  rank {}: {state:?}", r.rank),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

struct Slot {
    state: RankState,
    wait: Option<WaitInfo>,
    /// Self-reported unmatched inbox contents, refreshed by the rank on
    /// each poll slice while blocked. Avoids the detector reaching into
    /// other ranks' inbox locks (a lock-ordering hazard).
    in_flight: Vec<(usize, u64)>,
}

/// Shared diagnostic state of one [`crate::Universe`] run.
pub struct UniverseDiag {
    slots: Mutex<Vec<Slot>>,
    /// Bumped on every enqueue and every successful consume; a frozen
    /// counter across the grace period is the "no progress" signal.
    progress: AtomicU64,
    /// Chaos redeliveries scheduled but not yet enqueued. While > 0 the
    /// universe can still make progress on its own, so the detector
    /// stays off.
    pending_chaos: AtomicUsize,
    /// Candidate verdict: (progress value at arm time, arm instant).
    armed: Mutex<Option<(u64, Instant)>>,
    verdict: Mutex<Option<Arc<DeadlockReport>>>,
    grace: Duration,
    comm_ids: AtomicU64,
}

impl UniverseDiag {
    pub fn new(n_ranks: usize) -> Arc<UniverseDiag> {
        Arc::new(UniverseDiag {
            slots: Mutex::new(
                (0..n_ranks)
                    .map(|_| Slot {
                        state: RankState::Running,
                        wait: None,
                        in_flight: Vec::new(),
                    })
                    .collect(),
            ),
            progress: AtomicU64::new(0),
            pending_chaos: AtomicUsize::new(0),
            armed: Mutex::new(None),
            verdict: Mutex::new(None),
            grace: Duration::from_millis(150),
            comm_ids: AtomicU64::new(1), // 0 is the world communicator
        })
    }

    /// Allocate a fresh communicator id (used by `Comm::split`).
    pub fn next_comm_id(&self) -> u64 {
        self.comm_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Any enqueue or consume calls this; it also disarms a candidate
    /// deadlock verdict.
    pub fn bump_progress(&self) {
        self.progress.fetch_add(1, Ordering::SeqCst);
    }

    /// A chaos redelivery is pending (message dropped, will re-enqueue).
    pub fn chaos_hold(&self) {
        self.pending_chaos.fetch_add(1, Ordering::SeqCst);
    }

    /// The pending redelivery landed (or was abandoned).
    pub fn chaos_release(&self) {
        self.pending_chaos.fetch_sub(1, Ordering::SeqCst);
    }

    /// Rank `rank`'s main thread is about to sleep waiting on `wait`.
    pub fn begin_wait(&self, rank: usize, wait: WaitInfo) {
        let mut slots = self.slots.lock();
        if slots[rank].state != RankState::Dead {
            slots[rank].state = RankState::Blocked;
            slots[rank].wait = Some(wait);
        }
    }

    /// Refresh the blocked rank's self-reported unmatched inbox
    /// contents (shown as `in-flight tags` in the report).
    pub fn note_in_flight(&self, rank: usize, in_flight: Vec<(usize, u64)>) {
        let mut slots = self.slots.lock();
        if slots[rank].state == RankState::Blocked {
            slots[rank].in_flight = in_flight;
        }
    }

    /// Rank `rank` got its message / passed its barrier edge.
    pub fn end_wait(&self, rank: usize) {
        let mut slots = self.slots.lock();
        if slots[rank].state != RankState::Dead {
            slots[rank].state = RankState::Running;
            slots[rank].wait = None;
            slots[rank].in_flight.clear();
        }
    }

    /// Rank `rank`'s closure returned (normally or by panic other than
    /// a crash).
    pub fn mark_finished(&self, rank: usize) {
        let mut slots = self.slots.lock();
        if slots[rank].state != RankState::Dead {
            slots[rank].state = RankState::Finished;
            slots[rank].wait = None;
        }
        drop(slots);
        // Finishing is progress: the remaining ranks may now be wedged.
        self.bump_progress();
    }

    /// Rank `rank` crashed (fail-silent model).
    pub fn mark_dead(&self, rank: usize) {
        let mut slots = self.slots.lock();
        slots[rank].state = RankState::Dead;
        slots[rank].wait = None;
        drop(slots);
        self.bump_progress();
    }

    pub fn is_dead(&self, rank: usize) -> bool {
        self.slots.lock()[rank].state == RankState::Dead
    }

    /// The confirmed verdict, if the universe has been declared wedged.
    pub fn deadlock(&self) -> Option<Arc<DeadlockReport>> {
        self.verdict.lock().clone()
    }

    /// Called by blocked ranks each poll slice. Returns the verdict
    /// once the universe is *confirmed* wedged: all ranks non-Running,
    /// at least one Blocked, nothing pending, and the progress counter
    /// frozen across the grace period.
    pub fn poll_deadlock(&self) -> Option<Arc<DeadlockReport>> {
        if let Some(v) = self.verdict.lock().clone() {
            return Some(v);
        }
        let pending = self.pending_chaos.load(Ordering::SeqCst);
        let progress_now = self.progress.load(Ordering::SeqCst);
        let stuck = pending == 0 && {
            let slots = self.slots.lock();
            let any_blocked = slots.iter().any(|s| s.state == RankState::Blocked);
            let none_running = slots.iter().all(|s| s.state != RankState::Running);
            any_blocked && none_running
        };
        let mut armed = self.armed.lock();
        if !stuck {
            *armed = None;
            return None;
        }
        match *armed {
            Some((p, t)) if p == progress_now => {
                if t.elapsed() < self.grace {
                    return None; // candidate, not yet confirmed
                }
            }
            _ => {
                *armed = Some((progress_now, Instant::now()));
                return None;
            }
        }
        // Confirmed: frozen progress across the grace period while
        // everyone is blocked and nothing is pending. Build the report.
        let report = {
            let slots = self.slots.lock();
            Arc::new(DeadlockReport {
                ranks: slots
                    .iter()
                    .enumerate()
                    .map(|(rank, s)| RankWait {
                        rank,
                        state: s.state,
                        wait: s.wait,
                        in_flight: s.in_flight.clone(),
                    })
                    .collect(),
                pending_redeliveries: pending,
            })
        };
        let mut verdict = self.verdict.lock();
        if verdict.is_none() {
            *verdict = Some(Arc::clone(&report));
        }
        verdict.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_stays_quiet_while_a_rank_runs() {
        let d = UniverseDiag::new(2);
        d.begin_wait(0, WaitInfo { kind: BlockKind::Recv, src: 1, tag: 5, comm_id: 0 });
        // Rank 1 still Running → not a deadlock, ever.
        for _ in 0..3 {
            assert!(d.poll_deadlock().is_none());
            std::thread::sleep(Duration::from_millis(60));
        }
    }

    #[test]
    fn detector_confirms_after_grace_and_reports_waits() {
        let d = UniverseDiag::new(2);
        d.begin_wait(0, WaitInfo { kind: BlockKind::Recv, src: 1, tag: 5, comm_id: 0 });
        d.begin_wait(1, WaitInfo { kind: BlockKind::Recv, src: 0, tag: 9, comm_id: 0 });
        d.note_in_flight(0, vec![(1, 77)]);
        let mut verdict = None;
        for _ in 0..30 {
            if let Some(v) = d.poll_deadlock() {
                verdict = Some(v);
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let v = verdict.expect("deadlock never confirmed");
        assert_eq!(v.ranks.len(), 2);
        assert_eq!(v.ranks[0].wait.unwrap().tag, 5);
        assert_eq!(v.ranks[1].wait.unwrap().src, 0);
        let text = v.render();
        assert!(text.contains("DEADLOCK"), "{text}");
        assert!(text.contains("waits for tag 5 from rank 1"), "{text}");
        assert!(text.contains("in-flight tags: [77 from 1]"), "{text}");
    }

    #[test]
    fn progress_disarms_a_candidate_verdict() {
        let d = UniverseDiag::new(1);
        d.begin_wait(0, WaitInfo { kind: BlockKind::Recv, src: 0, tag: 1, comm_id: 0 });
        assert!(d.poll_deadlock().is_none()); // arms
        std::thread::sleep(Duration::from_millis(80));
        d.bump_progress(); // something moved
        assert!(d.poll_deadlock().is_none()); // re-arms at new count
        std::thread::sleep(Duration::from_millis(80));
        // Only 80ms since re-arm → still under grace.
        assert!(d.poll_deadlock().is_none());
    }

    #[test]
    fn pending_chaos_redelivery_holds_the_detector_off() {
        let d = UniverseDiag::new(1);
        d.begin_wait(0, WaitInfo { kind: BlockKind::Recv, src: 0, tag: 1, comm_id: 0 });
        d.chaos_hold();
        std::thread::sleep(Duration::from_millis(200));
        assert!(d.poll_deadlock().is_none());
        d.chaos_release();
        let mut verdict = None;
        for _ in 0..30 {
            if let Some(v) = d.poll_deadlock() {
                verdict = Some(v);
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(verdict.is_some(), "release should allow detection");
    }
}
