//! Deterministic fault injection for the virtual MPI fabric.
//!
//! The paper's argument is that runtime machinery keeps a run healthy
//! when reality diverges from the ideal — slow cores, blocked calls,
//! imbalance. This module makes "reality diverging" a first-class,
//! *reproducible* test input: a [`FaultPlan`] seeded through the
//! testkit PRNG decides, for every message and every blocking call,
//! whether to inject a delay, a reordering, a (bounded) drop with
//! redelivery, a rank stall, or a rank crash.
//!
//! Determinism contract: the decision for a message is a pure function
//! of `(seed, comm_id, src, dest, tag, seq)` — *never* of wall-clock
//! arrival order — so the same seed yields the identical injected-fault
//! schedule on every run regardless of thread interleaving. Injected
//! faults perturb timing and queue order only; because receivers match
//! messages by per-edge sequence number (MPI's non-overtaking rule),
//! delay/reorder/redelivered-drop plans leave the physics bit-identical.
//!
//! Attachment is through [`crate::hooks::MpiHooks`] ([`ChaosHooks`]
//! wraps any inner hooks, e.g. the DLB cluster), mirroring the paper's
//! "fix it in the runtime, not the source" philosophy: the simulation
//! code never mentions faults.

use crate::hooks::{BlockKind, MpiHooks};
use cfpd_testkit::digest::Digest;
use cfpd_testkit::rng::Rng;
use cfpd_testkit::sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What the fabric should do with one message (decided at send time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Sleep `ms` milliseconds before enqueueing (a slow link).
    Delay { ms: u64 },
    /// Enqueue at a pseudo-random queue position instead of the back
    /// (cross-stream reordering; per-stream order is preserved by
    /// sequence-number matching).
    Reorder { slot: u64 },
    /// Swallow the message now, re-enqueue it after `after_ms` (a lost
    /// packet recovered by retransmission). Counted as in-flight so the
    /// deadlock detector never fires on a pending redelivery.
    DropRedeliver { after_ms: u64 },
    /// Swallow the message permanently (loss beyond the redelivery
    /// bound). Receivers waiting on it end in a deadlock report.
    DropForever,
    /// The sending rank has crashed (fail-silent): the message is
    /// swallowed and the rank is marked dead in the universe registry.
    SenderCrashed,
}

/// Scripted crash of one rank after it has performed `after_sends`
/// sends (fail-silent model: subsequent sends vanish).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    pub rank: usize,
    pub after_sends: u64,
}

/// Fault rates and bounds of one chaos run. All probabilities are per
/// message (or per blocking call, for stalls).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the whole schedule.
    pub seed: u64,
    /// Probability a message is delayed, and the delay cap.
    pub delay_prob: f64,
    pub max_delay_ms: u64,
    /// Probability a message is enqueued out of order.
    pub reorder_prob: f64,
    /// Probability a message is dropped.
    pub drop_prob: f64,
    /// How many times a dropped message may be redelivered. `0` means
    /// dropped messages are lost forever (the deadlock-provoking
    /// corner); `>= 1` means every drop is eventually redelivered.
    pub max_redeliveries: u32,
    /// Redelivery latency for recovered drops.
    pub redeliver_ms: u64,
    /// Probability a rank stalls when entering a blocking call, and the
    /// stall cap.
    pub stall_prob: f64,
    pub max_stall_ms: u64,
    /// Optional scripted rank crash.
    pub crash: Option<CrashSpec>,
}

impl FaultConfig {
    /// No faults at all (the plan is inert; useful as a baseline).
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            delay_prob: 0.0,
            max_delay_ms: 0,
            reorder_prob: 0.0,
            drop_prob: 0.0,
            max_redeliveries: 1,
            redeliver_ms: 0,
            stall_prob: 0.0,
            max_stall_ms: 0,
            crash: None,
        }
    }

    /// The benign chaos preset: delays, reorderings, bounded
    /// drops-with-redelivery and short stalls — every fault is
    /// recoverable, so the physics must come out bit-identical.
    pub fn benign(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            delay_prob: 0.20,
            max_delay_ms: 3,
            reorder_prob: 0.25,
            drop_prob: 0.10,
            max_redeliveries: 1,
            redeliver_ms: 4,
            stall_prob: 0.10,
            max_stall_ms: 5,
            crash: None,
        }
    }

    /// The lossy corner: drops beyond the redelivery bound. A run under
    /// this plan must end in a structured deadlock report, never a hang.
    pub fn storm(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            delay_prob: 0.0,
            max_delay_ms: 0,
            reorder_prob: 0.0,
            drop_prob: 0.6,
            max_redeliveries: 0,
            redeliver_ms: 0,
            stall_prob: 0.0,
            max_stall_ms: 0,
            crash: None,
        }
    }
}

/// The seeded fault schedule: pure decision functions over message and
/// block-call coordinates.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan { cfg }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// A PRNG stream keyed on the decision coordinates: same inputs,
    /// same stream, on every run and platform.
    fn stream(&self, domain: u64, keys: &[u64]) -> Rng {
        let mut d = Digest::new();
        d.update_u64(self.cfg.seed).update_u64(domain);
        for &k in keys {
            d.update_u64(k);
        }
        Rng::new(d.finish())
    }

    /// Decide the fate of message `seq` on the edge `src -> dest` of
    /// communicator `comm_id` with tag `tag`. Pure: independent of
    /// arrival order, thread timing and prior decisions.
    pub fn decide_send(
        &self,
        comm_id: u64,
        src: usize,
        dest: usize,
        tag: u64,
        seq: u64,
    ) -> FaultAction {
        let c = &self.cfg;
        if c.drop_prob <= 0.0 && c.reorder_prob <= 0.0 && c.delay_prob <= 0.0 {
            return FaultAction::Deliver;
        }
        let mut rng = self.stream(0x5E4D, &[comm_id, src as u64, dest as u64, tag, seq]);
        let roll = rng.f64();
        if roll < c.drop_prob {
            return if c.max_redeliveries > 0 {
                FaultAction::DropRedeliver { after_ms: c.redeliver_ms }
            } else {
                FaultAction::DropForever
            };
        }
        if roll < c.drop_prob + c.reorder_prob {
            return FaultAction::Reorder { slot: rng.next_u64() };
        }
        if roll < c.drop_prob + c.reorder_prob + c.delay_prob {
            return FaultAction::Delay { ms: 1 + rng.bounded_u64(c.max_delay_ms.max(1)) };
        }
        FaultAction::Deliver
    }

    /// Decide whether rank `rank`'s `nth` blocking call stalls, and for
    /// how many milliseconds.
    pub fn decide_stall(&self, rank: usize, nth: u64) -> Option<u64> {
        let c = &self.cfg;
        if c.stall_prob <= 0.0 {
            return None;
        }
        let mut rng = self.stream(0x57A11, &[rank as u64, nth]);
        if rng.f64() < c.stall_prob {
            Some(1 + rng.bounded_u64(c.max_stall_ms.max(1)))
        } else {
            None
        }
    }
}

/// One injected fault, timestamped relative to hook creation — the
/// record the trace layer renders as chaos markers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub t: f64,
    pub rank: usize,
    pub kind: FaultEventKind,
}

/// What was injected (or observed, for timeouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEventKind {
    Delay { ms: u64 },
    Reorder,
    DropRedeliver,
    DropLost,
    Stall { ms: u64 },
    Crash,
    Timeout,
}

/// PMPI-style hooks that inject the [`FaultPlan`]'s schedule into the
/// fabric while forwarding every callback to an inner hooks object
/// (typically the DLB cluster) — chaos and load balancing compose.
pub struct ChaosHooks {
    plan: FaultPlan,
    inner: Arc<dyn MpiHooks>,
    epoch: Instant,
    log: Mutex<Vec<FaultEvent>>,
    /// Per-rank counters giving each blocking call / send a stable
    /// ordinal for the stall / crash decisions.
    blocks: Vec<AtomicU64>,
    sends: Vec<AtomicU64>,
    crashed: Vec<AtomicBool>,
}

impl ChaosHooks {
    /// Wrap `inner` with the fault schedule of `plan` for a universe of
    /// `n_ranks` ranks.
    pub fn new(n_ranks: usize, plan: FaultPlan, inner: Arc<dyn MpiHooks>) -> Arc<ChaosHooks> {
        Arc::new(ChaosHooks {
            plan,
            inner,
            epoch: Instant::now(),
            log: Mutex::new(Vec::new()),
            blocks: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            sends: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            crashed: (0..n_ranks).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    fn record(&self, rank: usize, kind: FaultEventKind) {
        if kind != FaultEventKind::Timeout {
            cfpd_telemetry::count!("mpi.faults_injected");
            cfpd_flight::record(cfpd_flight::EventKind::Fault, rank as u32, 0, 0, 0);
        }
        let t = self.epoch.elapsed().as_secs_f64();
        self.log.lock().push(FaultEvent { t, rank, kind });
    }

    /// Snapshot of every injected fault so far.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.log.lock().clone()
    }

    /// Number of injected faults (excluding observed timeouts).
    pub fn fault_count(&self) -> usize {
        self.log
            .lock()
            .iter()
            .filter(|e| e.kind != FaultEventKind::Timeout)
            .count()
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl MpiHooks for ChaosHooks {
    fn on_block(&self, rank: usize, kind: BlockKind) {
        if let Some(c) = self.blocks.get(rank) {
            let nth = c.fetch_add(1, Ordering::Relaxed);
            if let Some(ms) = self.plan.decide_stall(rank, nth) {
                self.record(rank, FaultEventKind::Stall { ms });
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        self.inner.on_block(rank, kind);
    }

    fn on_unblock(&self, rank: usize, kind: BlockKind) {
        self.inner.on_unblock(rank, kind);
    }

    fn on_send(&self, comm_id: u64, src: usize, dest: usize, tag: u64, seq: u64) -> FaultAction {
        if let (Some(crash), Some(counter)) = (self.plan.cfg.crash, self.sends.get(src)) {
            let nth = counter.fetch_add(1, Ordering::Relaxed);
            if src == crash.rank && nth >= crash.after_sends {
                if !self.crashed[src].swap(true, Ordering::Relaxed) {
                    self.record(src, FaultEventKind::Crash);
                }
                return FaultAction::SenderCrashed;
            }
        }
        let action = self.plan.decide_send(comm_id, src, dest, tag, seq);
        match action {
            FaultAction::Deliver => {}
            FaultAction::Delay { ms } => self.record(src, FaultEventKind::Delay { ms }),
            FaultAction::Reorder { .. } => self.record(src, FaultEventKind::Reorder),
            FaultAction::DropRedeliver { .. } => self.record(src, FaultEventKind::DropRedeliver),
            FaultAction::DropForever => self.record(src, FaultEventKind::DropLost),
            FaultAction::SenderCrashed => {}
        }
        action
    }

    fn on_timeout(&self, rank: usize, kind: BlockKind) {
        self.record(rank, FaultEventKind::Timeout);
        self.inner.on_timeout(rank, kind);
    }

    fn on_rank_dead(&self, rank: usize) {
        self.inner.on_rank_dead(rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let a = FaultPlan::new(FaultConfig::benign(7));
        let b = FaultPlan::new(FaultConfig::benign(7));
        for seq in 0..200 {
            assert_eq!(
                a.decide_send(0, 0, 1, 11, seq),
                b.decide_send(0, 0, 1, 11, seq)
            );
            assert_eq!(a.decide_stall(1, seq), b.decide_stall(1, seq));
        }
    }

    #[test]
    fn benign_plan_injects_something_but_never_loses() {
        let plan = FaultPlan::new(FaultConfig::benign(42));
        let mut injected = 0usize;
        for seq in 0..500 {
            match plan.decide_send(0, 0, 1, 10, seq) {
                FaultAction::Deliver => {}
                FaultAction::DropForever | FaultAction::SenderCrashed => {
                    panic!("benign plan produced an unrecoverable fault")
                }
                _ => injected += 1,
            }
        }
        assert!(injected > 50, "benign plan too quiet: {injected}/500");
    }

    #[test]
    fn storm_plan_loses_messages_forever() {
        let plan = FaultPlan::new(FaultConfig::storm(3));
        let lost = (0..100)
            .filter(|&seq| plan.decide_send(0, 0, 1, 10, seq) == FaultAction::DropForever)
            .count();
        assert!(lost > 20, "storm plan too gentle: {lost}/100");
    }

    #[test]
    fn chaos_hooks_log_and_forward() {
        let inner = Arc::new(crate::hooks::CountingHooks::default());
        let chaos = ChaosHooks::new(2, FaultPlan::new(FaultConfig::benign(1)), Arc::clone(&inner) as _);
        chaos.on_block(0, BlockKind::Recv);
        chaos.on_unblock(0, BlockKind::Recv);
        assert_eq!(inner.blocks.load(Ordering::SeqCst), 1);
        assert_eq!(inner.unblocks.load(Ordering::SeqCst), 1);
        for seq in 0..50 {
            chaos.on_send(0, 0, 1, 9, seq);
        }
        assert!(chaos.fault_count() > 0, "no faults logged over 50 sends");
    }

    #[test]
    fn scripted_crash_swallows_subsequent_sends() {
        let cfg = FaultConfig {
            crash: Some(CrashSpec { rank: 1, after_sends: 3 }),
            ..FaultConfig::quiet(0)
        };
        let chaos = ChaosHooks::new(2, FaultPlan::new(cfg), Arc::new(NoHooks) as _);
        for seq in 0..3 {
            assert_eq!(chaos.on_send(0, 1, 0, 5, seq), FaultAction::Deliver);
        }
        assert_eq!(chaos.on_send(0, 1, 0, 5, 3), FaultAction::SenderCrashed);
        assert_eq!(chaos.on_send(0, 1, 0, 5, 4), FaultAction::SenderCrashed);
        // The other rank is unaffected.
        assert_eq!(chaos.on_send(0, 0, 1, 5, 0), FaultAction::Deliver);
        let crashes = chaos
            .events()
            .iter()
            .filter(|e| e.kind == FaultEventKind::Crash)
            .count();
        assert_eq!(crashes, 1, "crash must be logged exactly once");
    }
}
