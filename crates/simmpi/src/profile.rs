//! Deterministic heterogeneous-cluster emulation.
//!
//! The paper's headline comparison runs the same code on two very
//! different microarchitectures (out-of-order MareNostrum4 Xeons vs
//! in-order ThunderX Arm cores). This container is homogeneous, so
//! heterogeneity is *emulated*: a seeded [`RankProfile`] assigns each
//! rank a relative speed, and [`ProfileHooks`] — attached in the same
//! PMPI chain as [`crate::fault::ChaosHooks`] — injects a deterministic
//! extra delay whenever a slow rank enters a blocking call, as if its
//! compute phase had taken longer on a slower core.
//!
//! Determinism contract (mirrors [`crate::fault::FaultPlan`]): the
//! injected delay is a pure function of `(seed, rank, blocking-call
//! ordinal, call kind)` — never of wall-clock arrival order. Profiles
//! perturb timing only, so the logical trace and all goldens stay
//! byte-identical whether a profile is attached or not.

use crate::fault::FaultAction;
use crate::hooks::{BlockKind, MpiHooks};
use cfpd_testkit::digest::Digest;
use cfpd_testkit::rng::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Domain constant separating profile streams from the fault-plan
/// streams (`0x5E4D` sends, `0x57A11` stalls).
const PROFILE_DOMAIN: u64 = 0x48E7E0;

/// A seeded per-rank speed profile. Rank `r` runs at relative speed
/// `pattern[r % pattern.len()]` (`1.0` = fastest class), so one profile
/// describes any rank count — an alternating fast/slow pattern scales
/// from 2 emulated nodes to 64.
#[derive(Debug, Clone, PartialEq)]
pub struct RankProfile {
    /// Human-readable profile name (surfaces in reports and traces).
    pub name: String,
    /// Seed of the injected-delay schedule.
    pub seed: u64,
    /// Relative per-rank speeds in `(0, 1]`, indexed modulo its length.
    pub pattern: Vec<f64>,
    /// Delay scale: a rank of speed `s` sleeps up to
    /// `stall_ms * (1/s - 1)` milliseconds per blocking call.
    pub stall_ms: f64,
}

impl RankProfile {
    /// Build a profile; speeds must be finite and in `(0, 1]`.
    pub fn new(name: &str, seed: u64, pattern: Vec<f64>, stall_ms: f64) -> RankProfile {
        assert!(!pattern.is_empty(), "profile pattern must not be empty");
        for &s in &pattern {
            assert!(
                s.is_finite() && s > 0.0 && s <= 1.0,
                "profile speed {s} outside (0, 1]"
            );
        }
        assert!(stall_ms.is_finite() && stall_ms >= 0.0);
        RankProfile { name: name.to_string(), seed, pattern, stall_ms }
    }

    /// The homogeneous profile: every rank at full speed, nothing
    /// injected.
    pub fn uniform(seed: u64) -> RankProfile {
        RankProfile::new("uniform", seed, vec![1.0], 0.0)
    }

    /// Relative speed of `rank` (`1.0` = fastest class).
    pub fn speed_of(&self, rank: usize) -> f64 {
        self.pattern[rank % self.pattern.len()]
    }

    /// Slowdown factor of `rank` relative to the fastest class
    /// (`>= 1.0`).
    pub fn slow_factor(&self, rank: usize) -> f64 {
        1.0 / self.speed_of(rank)
    }

    /// True when no rank is slowed (nothing will ever be injected).
    pub fn is_uniform(&self) -> bool {
        self.stall_ms == 0.0 || self.pattern.iter().all(|&s| s == 1.0)
    }

    fn kind_key(kind: BlockKind) -> u64 {
        match kind {
            BlockKind::Recv => 0,
            BlockKind::Barrier => 1,
            BlockKind::Collective => 2,
        }
    }

    /// The injected delay for rank `rank`'s `nth` blocking call of
    /// `kind`. Pure: same inputs, same delay, on every run and platform.
    pub fn stall_of(&self, rank: usize, nth: u64, kind: BlockKind) -> Duration {
        let slowness = self.slow_factor(rank) - 1.0;
        if slowness <= 0.0 || self.stall_ms <= 0.0 {
            return Duration::ZERO;
        }
        let mut d = Digest::new();
        d.update_u64(self.seed)
            .update_u64(PROFILE_DOMAIN)
            .update_u64(rank as u64)
            .update_u64(nth)
            .update_u64(Self::kind_key(kind));
        let mut rng = Rng::new(d.finish());
        // Jitter in [0.5, 1.0] of the full stall keeps the schedule
        // non-degenerate without ever exceeding the configured cap.
        let ms = self.stall_ms * slowness * (0.5 + 0.5 * rng.f64());
        Duration::from_micros((ms * 1000.0) as u64)
    }
}

/// PMPI hooks injecting a [`RankProfile`]'s delay schedule while
/// forwarding every callback to an inner hooks object (typically the
/// DLB cluster, possibly already wrapped in chaos) — heterogeneity,
/// chaos and load balancing compose in one chain.
pub struct ProfileHooks {
    profile: RankProfile,
    inner: Arc<dyn MpiHooks>,
    /// Per-rank blocking-call ordinals (the `nth` of the pure schedule).
    blocks: Vec<AtomicU64>,
    /// Per-rank injected microseconds, for tests and diagnostics.
    injected_us: Vec<AtomicU64>,
}

impl ProfileHooks {
    /// Wrap `inner` with the delay schedule of `profile` for a universe
    /// of `n_ranks` ranks.
    pub fn new(
        n_ranks: usize,
        profile: RankProfile,
        inner: Arc<dyn MpiHooks>,
    ) -> Arc<ProfileHooks> {
        Arc::new(ProfileHooks {
            profile,
            inner,
            blocks: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            injected_us: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    pub fn profile(&self) -> &RankProfile {
        &self.profile
    }

    /// Total microseconds injected into `rank` so far.
    pub fn injected_micros(&self, rank: usize) -> u64 {
        self.injected_us.get(rank).map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

impl MpiHooks for ProfileHooks {
    fn on_block(&self, rank: usize, kind: BlockKind) {
        if let Some(c) = self.blocks.get(rank) {
            let nth = c.fetch_add(1, Ordering::Relaxed);
            let stall = self.profile.stall_of(rank, nth, kind);
            if stall > Duration::ZERO {
                self.injected_us[rank].fetch_add(stall.as_micros() as u64, Ordering::Relaxed);
                cfpd_telemetry::count!("hetero.stalls");
                std::thread::sleep(stall);
            }
        }
        self.inner.on_block(rank, kind);
    }

    fn on_unblock(&self, rank: usize, kind: BlockKind) {
        self.inner.on_unblock(rank, kind);
    }

    fn on_send(&self, comm_id: u64, src: usize, dest: usize, tag: u64, seq: u64) -> FaultAction {
        self.inner.on_send(comm_id, src, dest, tag, seq)
    }

    fn on_msg_recv(&self, comm_id: u64, src: usize, dest: usize, tag: u64, seq: u64, bytes: usize) {
        self.inner.on_msg_recv(comm_id, src, dest, tag, seq, bytes);
    }

    fn on_timeout(&self, rank: usize, kind: BlockKind) {
        self.inner.on_timeout(rank, kind);
    }

    fn on_rank_dead(&self, rank: usize) {
        self.inner.on_rank_dead(rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::CountingHooks;

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let a = RankProfile::new("mixed", 7, vec![1.0, 0.25], 3.0);
        let b = RankProfile::new("mixed", 7, vec![1.0, 0.25], 3.0);
        for nth in 0..100 {
            for kind in [BlockKind::Recv, BlockKind::Barrier, BlockKind::Collective] {
                assert_eq!(a.stall_of(1, nth, kind), b.stall_of(1, nth, kind));
            }
        }
        let c = RankProfile::new("mixed", 8, vec![1.0, 0.25], 3.0);
        let differs = (0..100)
            .any(|nth| a.stall_of(1, nth, BlockKind::Recv) != c.stall_of(1, nth, BlockKind::Recv));
        assert!(differs, "different seeds must yield different schedules");
    }

    #[test]
    fn fast_ranks_are_never_delayed() {
        let p = RankProfile::new("mixed", 11, vec![1.0, 0.2], 2.0);
        for nth in 0..50 {
            assert_eq!(p.stall_of(0, nth, BlockKind::Barrier), Duration::ZERO);
            assert_eq!(p.stall_of(2, nth, BlockKind::Barrier), Duration::ZERO);
            assert!(p.stall_of(1, nth, BlockKind::Barrier) > Duration::ZERO);
            assert!(p.stall_of(3, nth, BlockKind::Barrier) > Duration::ZERO);
        }
        assert!(RankProfile::uniform(0).is_uniform());
        assert!(!p.is_uniform());
    }

    #[test]
    fn stall_respects_the_configured_cap() {
        let p = RankProfile::new("mixed", 3, vec![1.0, 0.5], 4.0);
        // Speed 0.5 → slowness 1.0 → at most stall_ms (4 ms) per call.
        let cap = Duration::from_micros(4000);
        for nth in 0..200 {
            assert!(p.stall_of(1, nth, BlockKind::Recv) <= cap);
        }
    }

    #[test]
    fn hooks_delay_slow_ranks_and_forward() {
        let inner = Arc::new(CountingHooks::default());
        let profile = RankProfile::new("mixed", 5, vec![1.0, 0.4], 1.0);
        let hooks = ProfileHooks::new(2, profile, Arc::clone(&inner) as _);
        hooks.on_block(0, BlockKind::Barrier);
        hooks.on_block(1, BlockKind::Barrier);
        hooks.on_unblock(0, BlockKind::Barrier);
        hooks.on_unblock(1, BlockKind::Barrier);
        assert_eq!(inner.blocks.load(Ordering::SeqCst), 2);
        assert_eq!(inner.unblocks.load(Ordering::SeqCst), 2);
        assert_eq!(hooks.injected_micros(0), 0, "fast rank untouched");
        assert!(hooks.injected_micros(1) > 0, "slow rank delayed");
    }
}
