#!/usr/bin/env bash
# CI entrypoint: the full offline verification chain.
#
#   * release build of every workspace target, fully offline (the
#     workspace has zero external dependencies — any attempt to reach a
#     registry is a regression),
#   * the complete test suite (unit, property, invariant, golden-trace),
#   * a warning gate on cfpd-testkit: the verification stack itself must
#     compile without a single compiler warning.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build (offline) =="
cargo build --release --offline --all-targets

echo "== test suite (offline) =="
cargo test -q --offline

echo "== testkit warning gate =="
touch crates/testkit/src/lib.rs
out=$(cargo build --offline -p cfpd-testkit 2>&1)
if grep -q "^warning" <<<"$out"; then
    echo "$out"
    echo "FAIL: cfpd-testkit emits compiler warnings" >&2
    exit 1
fi

echo "verify: OK"
