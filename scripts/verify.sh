#!/usr/bin/env bash
# CI entrypoint: the full offline verification chain.
#
#   * release build of every workspace target, fully offline (the
#     workspace has zero external dependencies — any attempt to reach a
#     registry is a regression),
#   * the complete test suite (unit, property, invariant, golden-trace),
#   * a chaos smoke: a seeded benign fault-injection run must stay
#     bit-identical to the fault-free run (exit 0), and a fault storm
#     must terminate with a structured deadlock report (exit 3) instead
#     of hanging — both under a hard wall-clock cap,
#   * a golden double-run: the default layout must match the checked-in
#     golden byte-for-byte (the locality hot path is compiled in but
#     must be invisible while disabled), and CFPD_LAYOUT=opt must match
#     its own checked-in golden — and both byte-match again with
#     CFPD_TELEMETRY=1, because telemetry summaries go to stderr only,
#   * a telemetry smoke: `cfpd report --json` must emit valid JSON
#     carrying the POP rollup keys, and the overhead bench's --quick run
#     must complete and emit its JSON,
#   * a bench smoke: the hotpath benchmark's --quick run must complete
#     and emit its JSON carrying the per-phase breakdown schema
#     (phases.{spmv,jacobi,axpy_dot,sgs,assembly} + end_to_end),
#   * a trace-pipeline smoke: `cfpd trace export` writes Paraver +
#     Chrome + summary artifacts that validate against the in-repo
#     RFC 8259 parser, `cfpd trace diff` of two identical-seed traced
#     runs reports a zero structural delta (exit 0), `cfpd trace
#     analyze` agrees with the online POP rollup, and `cfpd golden
#     --trace` keeps stdout byte-identical to the checked-in golden,
#   * a campaign smoke: `cfpd campaign expand` sees the documented cell
#     count (excludes applied), `campaign run --json` of the tiny matrix
#     is valid JSON and byte-identical across pool sizes, and `campaign
#     report` of the small matrix against the blessed baseline
#     (tests/golden/campaign_small.golden) reports zero regressions,
#   * a hetero smoke: the profile x policy campaign matrix matches its
#     blessed baseline (tests/golden/campaign_hetero.golden — skewed
#     rank speeds and the predictive policy never move physics), the
#     single-run golden is untouched with profiles disabled, and the
#     hetero bench's --quick JSON carries the reactive-vs-predictive
#     schema with predictive PE >= reactive PE on every profile,
#   * a serve smoke: `cfpd serve run` on an ephemeral port accepts the
#     tiny campaign over HTTP, the served result is byte-identical to
#     the direct `campaign run --json` output, `/metrics` passes the
#     strict Prometheus lint, and `serve drain` checkpoints and exits 0,
#   * an observability smoke: the goldens and the tiny campaign stay
#     byte-identical with the flight recorder on (CFPD_FLIGHT=1 —
#     recording is timing-only by contract), `cfpd flight dump |
#     analyze` round-trips through the digest guard, `cfpd report
#     --baseline` against its own --json capture reports zero
#     regressions, a deadline-killed daemon job leaves a
#     digest-valid flight dump next to its WAL that `flight analyze`
#     accepts, and the flight recorder's per-record cost in the quick
#     overhead bench stays within the 100 ns budget,
#   * a workspace-wide warning gate: every crate and every target must
#     compile without a single compiler warning.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build (offline) =="
cargo build --release --offline --all-targets

echo "== test suite (offline) =="
cargo test -q --offline

echo "== chaos smoke (seeded fault injection) =="
cfpd=target/release/cfpd
timeout 120 "$cfpd" chaos --seed 7 >/dev/null
rc=0
timeout 120 "$cfpd" chaos --seed 7 --storm >/dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "FAIL: chaos storm exited $rc, expected 3 (structured deadlock report)" >&2
    exit 1
fi
timeout 120 "$cfpd" chaos --seed 7 --json | python3 -m json.tool >/dev/null \
    || { echo "FAIL: chaos --json is not valid JSON" >&2; exit 1; }

echo "== golden double-run (default + opt layout) =="
timeout 120 "$cfpd" golden --ranks 2 | diff -q - tests/golden/sync_small.golden \
    || { echo "FAIL: default-layout golden drifted" >&2; exit 1; }
CFPD_LAYOUT=opt timeout 120 "$cfpd" golden --ranks 2 | diff -q - tests/golden/sync_small_opt.golden \
    || { echo "FAIL: opt-layout golden drifted" >&2; exit 1; }

echo "== golden double-run under CFPD_TELEMETRY=1 (stderr-only contract) =="
CFPD_TELEMETRY=1 timeout 120 "$cfpd" golden --ranks 2 2>/dev/null | diff -q - tests/golden/sync_small.golden \
    || { echo "FAIL: telemetry perturbed the default golden" >&2; exit 1; }
CFPD_TELEMETRY=1 CFPD_LAYOUT=opt timeout 120 "$cfpd" golden --ranks 2 2>/dev/null | diff -q - tests/golden/sync_small_opt.golden \
    || { echo "FAIL: telemetry perturbed the opt golden" >&2; exit 1; }

echo "== telemetry smoke (cfpd report --json) =="
report=$(timeout 120 "$cfpd" report --json)
python3 -m json.tool <<<"$report" >/dev/null \
    || { echo "FAIL: cfpd report --json is not valid JSON" >&2; exit 1; }
for key in parallel_efficiency load_balance comm_efficiency trace_crosscheck; do
    grep -q "\"$key\"" <<<"$report" \
        || { echo "FAIL: cfpd report --json missing key $key" >&2; exit 1; }
done

echo "== bench smoke (hotpath --quick + telemetry overhead --quick) =="
timeout 300 target/release/hotpath --quick >/dev/null
test -s results/BENCH_hotpath_quick.json || { echo "FAIL: BENCH_hotpath_quick.json missing" >&2; exit 1; }
python3 -m json.tool results/BENCH_hotpath_quick.json >/dev/null \
    || { echo "FAIL: hotpath JSON invalid" >&2; exit 1; }
# The per-phase schema the perf docs and the trajectory gate key on.
for key in '"phases"' '"spmv"' '"jacobi"' '"axpy_dot"' '"sgs"' '"assembly"' \
           '"end_to_end"' '"default_ns"' '"opt_ns"' '"speedup"'; do
    grep -q "$key" results/BENCH_hotpath_quick.json \
        || { echo "FAIL: BENCH_hotpath_quick.json missing $key" >&2; exit 1; }
done
timeout 300 target/release/overhead --quick >/dev/null
test -s results/BENCH_telemetry_overhead_quick.json \
    || { echo "FAIL: BENCH_telemetry_overhead_quick.json missing" >&2; exit 1; }
python3 -m json.tool results/BENCH_telemetry_overhead_quick.json >/dev/null \
    || { echo "FAIL: telemetry overhead JSON invalid" >&2; exit 1; }

echo "== trace pipeline smoke (export + diff + analyze + golden --trace) =="
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
timeout 300 "$cfpd" trace export --out "$tracedir/a" >/dev/null
timeout 300 "$cfpd" trace export --out "$tracedir/b" >/dev/null
for f in trace.prv trace.pcf trace.row chrome.json summary.json; do
    test -s "$tracedir/a/$f" || { echo "FAIL: trace export missing $f" >&2; exit 1; }
done
python3 -m json.tool "$tracedir/a/chrome.json" >/dev/null \
    || { echo "FAIL: chrome.json invalid" >&2; exit 1; }
python3 -m json.tool "$tracedir/a/summary.json" >/dev/null \
    || { echo "FAIL: summary.json invalid" >&2; exit 1; }
timeout 300 "$cfpd" trace diff "$tracedir/a" "$tracedir/b" >/dev/null \
    || { echo "FAIL: identical-seed trace diff was not a zero delta" >&2; exit 1; }
timeout 300 "$cfpd" trace analyze >/dev/null \
    || { echo "FAIL: trace analyze diverged from the online POP rollup" >&2; exit 1; }
timeout 300 "$cfpd" golden --ranks 2 --trace "$tracedir/g" 2>/dev/null \
    | diff -q - tests/golden/sync_small.golden \
    || { echo "FAIL: --trace perturbed the golden document" >&2; exit 1; }
test -s "$tracedir/g/trace.prv" || { echo "FAIL: golden --trace wrote no trace" >&2; exit 1; }

echo "== campaign smoke (expand + run + report vs blessed baseline) =="
# Capture, then grep: `grep -q` closing the pipe early would EPIPE the
# binary and trip pipefail even on a match.
expand_out=$(timeout 120 "$cfpd" campaign expand examples/campaigns/tiny.campaign)
grep -q "3 cells (4 before excludes)" <<<"$expand_out" \
    || { echo "FAIL: tiny campaign expansion drifted" >&2; exit 1; }
timeout 300 "$cfpd" campaign run examples/campaigns/tiny.campaign --json > "$tracedir/tiny-a.json"
timeout 300 "$cfpd" campaign run examples/campaigns/tiny.campaign --jobs 1 --json > "$tracedir/tiny-b.json"
cmp -s "$tracedir/tiny-a.json" "$tracedir/tiny-b.json" \
    || { echo "FAIL: campaign report depends on the worker-pool size" >&2; exit 1; }
python3 -m json.tool "$tracedir/tiny-a.json" >/dev/null \
    || { echo "FAIL: campaign run --json is not valid JSON" >&2; exit 1; }
timeout 600 "$cfpd" campaign report examples/campaigns/small.campaign \
    --baseline tests/golden/campaign_small.golden >/dev/null \
    || { echo "FAIL: small campaign drifted from the blessed baseline" >&2; exit 1; }

echo "== hetero smoke (profile x policy campaign + reactive-vs-predictive bench) =="
# The profile x policy x mode matrix against its blessed baseline:
# hetero profiles and DLB policies are timing-only, so every cell's
# physics digest must match the golden exactly — this runs the mixed
# mn4_thunder/thunder_tail profiles under BOTH policies end-to-end.
timeout 600 "$cfpd" campaign report examples/campaigns/hetero.campaign \
    --baseline tests/golden/campaign_hetero.golden >/dev/null \
    || { echo "FAIL: hetero campaign drifted from the blessed baseline" >&2; exit 1; }
# Profiles off must leave the single-run golden untouched (the hook is
# not even installed); this re-checks the contract right next to the
# code that could break it.
timeout 120 "$cfpd" golden --ranks 2 | diff -q - tests/golden/sync_small.golden \
    || { echo "FAIL: golden drifted with hetero compiled in but disabled" >&2; exit 1; }
timeout 300 target/release/hetero --quick >/dev/null
test -s results/BENCH_hetero_quick.json || { echo "FAIL: BENCH_hetero_quick.json missing" >&2; exit 1; }
python3 -m json.tool results/BENCH_hetero_quick.json >/dev/null \
    || { echo "FAIL: hetero JSON invalid" >&2; exit 1; }
# The reactive-vs-predictive schema the experiment docs key on.
for key in '"profiles"' '"reactive"' '"predictive"' '"pe_margin"' \
           '"wall_speedup"' '"pre_lends"' '"fallbacks"'; do
    grep -q "$key" results/BENCH_hetero_quick.json \
        || { echo "FAIL: BENCH_hetero_quick.json missing $key" >&2; exit 1; }
done
# The headline claim: on every skewed profile the predictive policy's
# PE must be at least the reactive policy's.
python3 - <<'PYEOF' || { echo "FAIL: predictive PE fell below reactive PE" >&2; exit 1; }
import json, sys
doc = json.load(open("results/BENCH_hetero_quick.json"))
for name, row in doc["profiles"].items():
    if row["predictive"]["pe"] < row["reactive"]["pe"]:
        sys.exit(f"{name}: predictive {row['predictive']['pe']} < reactive {row['reactive']['pe']}")
PYEOF

echo "== serve smoke (daemon lifecycle: submit, poll, result, metrics, drain) =="
servedir="$tracedir/serve-data"
timeout 300 "$cfpd" serve run --addr 127.0.0.1:0 --data "$servedir" \
    > "$tracedir/serve.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's/^cfpd-serve listening on //p' "$tracedir/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$tracedir/serve.log"; echo "FAIL: serve daemon died on startup" >&2; exit 1; }
    sleep 0.05
done
[ -n "$addr" ] || { echo "FAIL: serve daemon never reported its address" >&2; exit 1; }
"$cfpd" serve submit examples/campaigns/tiny.campaign --addr "$addr" > "$tracedir/serve-submit.json"
job=$(grep -o '"job":[0-9]*' "$tracedir/serve-submit.json" | head -1 | cut -d: -f2)
[ -n "$job" ] || { echo "FAIL: serve submit returned no job id" >&2; exit 1; }
done_seen=""
for _ in $(seq 1 600); do
    if "$cfpd" serve status "$job" --addr "$addr" | grep -q '"state":"done"'; then
        done_seen=1; break
    fi
    sleep 0.1
done
[ -n "$done_seen" ] || { echo "FAIL: served tiny campaign never reached done" >&2; exit 1; }
"$cfpd" serve result "$job" --addr "$addr" > "$tracedir/serve-result.json"
cmp -s "$tracedir/serve-result.json" "$tracedir/tiny-a.json" \
    || { echo "FAIL: served result differs from the direct campaign run" >&2; exit 1; }
"$cfpd" serve metrics --addr "$addr" --lint > /dev/null \
    || { echo "FAIL: /metrics failed the strict Prometheus lint" >&2; exit 1; }
"$cfpd" serve drain --addr "$addr" > /dev/null
wait "$serve_pid" || { echo "FAIL: serve daemon did not drain cleanly" >&2; exit 1; }
grep -q "cfpd-serve drained" "$tracedir/serve.log" \
    || { echo "FAIL: drain did not complete" >&2; exit 1; }

echo "== observability smoke (flight recorder + watchdog + baseline diff) =="
# Recording is timing-only by contract: both goldens and the campaign
# document must stay byte-identical with the ring buffer recording.
CFPD_FLIGHT=1 timeout 120 "$cfpd" golden --ranks 2 | diff -q - tests/golden/sync_small.golden \
    || { echo "FAIL: flight recorder perturbed the default golden" >&2; exit 1; }
CFPD_FLIGHT=1 CFPD_LAYOUT=opt timeout 120 "$cfpd" golden --ranks 2 | diff -q - tests/golden/sync_small_opt.golden \
    || { echo "FAIL: flight recorder perturbed the opt golden" >&2; exit 1; }
CFPD_FLIGHT=1 timeout 300 "$cfpd" campaign run examples/campaigns/tiny.campaign --json > "$tracedir/tiny-flight.json"
cmp -s "$tracedir/tiny-flight.json" "$tracedir/tiny-a.json" \
    || { echo "FAIL: flight recorder perturbed the campaign document" >&2; exit 1; }
# The black box round-trips through its own digest guard.
timeout 300 "$cfpd" flight dump --ranks 2 --out "$tracedir/smoke.flight" >/dev/null 2>&1
test -s "$tracedir/smoke.flight" || { echo "FAIL: flight dump wrote nothing" >&2; exit 1; }
timeout 120 "$cfpd" flight analyze "$tracedir/smoke.flight" >/dev/null \
    || { echo "FAIL: flight analyze rejected a fresh dump" >&2; exit 1; }
# A report diffed against its own capture must show zero regressions.
timeout 120 "$cfpd" report --json > "$tracedir/report-base.json"
timeout 120 "$cfpd" report --baseline "$tracedir/report-base.json" >/dev/null \
    || { echo "FAIL: report --baseline regressed against its own capture" >&2; exit 1; }
# A deadline-killed serve job leaves a digest-valid flight dump next to
# its WAL (stall > deadline makes the kill deterministic).
flightdir="$tracedir/serve-flight"
timeout 300 "$cfpd" serve run --addr 127.0.0.1:0 --data "$flightdir" \
    --deadline 0.3 --fault-stall-first 1 --fault-stall-ms 800 \
    > "$tracedir/serve-flight.log" 2>&1 &
flight_pid=$!
addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's/^cfpd-serve listening on //p' "$tracedir/serve-flight.log")
    [ -n "$addr" ] && break
    kill -0 "$flight_pid" 2>/dev/null || { cat "$tracedir/serve-flight.log"; echo "FAIL: flight-smoke daemon died on startup" >&2; exit 1; }
    sleep 0.05
done
[ -n "$addr" ] || { echo "FAIL: flight-smoke daemon never reported its address" >&2; exit 1; }
"$cfpd" serve submit examples/campaigns/tiny.campaign --addr "$addr" >/dev/null
failed_seen=""
for _ in $(seq 1 200); do
    if "$cfpd" serve status 1 --addr "$addr" | grep -q '"state":"failed"'; then
        failed_seen=1; break
    fi
    sleep 0.1
done
[ -n "$failed_seen" ] || { echo "FAIL: deadline kill never fired" >&2; exit 1; }
for _ in $(seq 1 100); do
    test -s "$flightdir/job-1.flight" && break
    sleep 0.05
done
test -s "$flightdir/job-1.flight" \
    || { echo "FAIL: deadline-killed job left no flight dump" >&2; exit 1; }
timeout 120 "$cfpd" flight analyze "$flightdir/job-1.flight" >/dev/null \
    || { echo "FAIL: the post-mortem flight dump did not digest-verify" >&2; exit 1; }
kill "$flight_pid" 2>/dev/null || true
wait "$flight_pid" 2>/dev/null || true
# The recorder's per-record cost must stay within the pinned budget.
python3 - <<'PYEOF' || { echo "FAIL: flight_record exceeded the 100 ns/record budget" >&2; exit 1; }
import json, sys
doc = json.load(open("results/BENCH_telemetry_overhead_quick.json"))
rows = {r["name"]: r["median_ns"] for r in doc["rows"]}
if "flight_record" not in rows:
    sys.exit("overhead bench has no flight_record row")
if rows["flight_record"] > 100.0:
    sys.exit(f"flight_record {rows['flight_record']} ns/record > 100 ns budget")
PYEOF

echo "== workspace warning gate =="
find crates -name '*.rs' -path '*/src/*' -exec touch {} +
out=$(cargo build --offline --all-targets 2>&1)
if grep -q "^warning" <<<"$out"; then
    echo "$out"
    echo "FAIL: workspace emits compiler warnings" >&2
    exit 1
fi

echo "verify: OK"
