#!/usr/bin/env bash
# CI entrypoint: the full offline verification chain.
#
#   * release build of every workspace target, fully offline (the
#     workspace has zero external dependencies — any attempt to reach a
#     registry is a regression),
#   * the complete test suite (unit, property, invariant, golden-trace),
#   * a chaos smoke: a seeded benign fault-injection run must stay
#     bit-identical to the fault-free run (exit 0), and a fault storm
#     must terminate with a structured deadlock report (exit 3) instead
#     of hanging — both under a hard wall-clock cap,
#   * a warning gate on cfpd-testkit: the verification stack itself must
#     compile without a single compiler warning.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build (offline) =="
cargo build --release --offline --all-targets

echo "== test suite (offline) =="
cargo test -q --offline

echo "== chaos smoke (seeded fault injection) =="
cfpd=target/release/cfpd
timeout 120 "$cfpd" chaos --seed 7 >/dev/null
rc=0
timeout 120 "$cfpd" chaos --seed 7 --storm >/dev/null || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "FAIL: chaos storm exited $rc, expected 3 (structured deadlock report)" >&2
    exit 1
fi

echo "== testkit warning gate =="
touch crates/testkit/src/lib.rs
out=$(cargo build --offline -p cfpd-testkit 2>&1)
if grep -q "^warning" <<<"$out"; then
    echo "$out"
    echo "FAIL: cfpd-testkit emits compiler warnings" >&2
    exit 1
fi

echo "verify: OK"
