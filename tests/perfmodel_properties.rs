//! Property-based tests of the virtual-platform model: invariants the
//! DES must satisfy for the figure reproductions to be trustworthy.
//! Runs on the in-repo `cfpd-testkit` property runner (no external
//! dependencies).

use cfpd_perfmodel::{Mapping, PhaseSpec, Platform, Sensitivity, SyncScenario};
use cfpd_solver::AssemblyStrategy;
use cfpd_testkit::prop::{check, f64_range, usize_range, vec_of, Gen, PropConfig};
use cfpd_trace::Phase;

fn arb_work(n: usize) -> impl Gen<Value = Vec<f64>> {
    vec_of(f64_range(1e3, 1e7), n)
}

fn scenario(
    work: Vec<f64>,
    platform: Platform,
    dlb: bool,
    strategy: AssemblyStrategy,
) -> SyncScenario {
    SyncScenario {
        platform,
        phases: vec![PhaseSpec::fixed(
            Phase::Assembly,
            work,
            Sensitivity::Assembly { colors: 10, tasks: 16 },
        )],
        steps: 2,
        threads_per_rank: 1,
        strategy,
        dlb,
        mapping: Mapping::Block,
    }
}

/// DLB never makes a run slower under the model (LeWI only adds
/// resources to working ranks).
#[test]
fn dlb_never_slower() {
    check("dlb_never_slower", PropConfig::cases(24), &arb_work(8), |work| {
        let p = Platform::mare_nostrum4();
        let t_off =
            scenario(work.clone(), p.clone(), false, AssemblyStrategy::Serial).run().total_time;
        let t_on = scenario(work.clone(), p, true, AssemblyStrategy::Serial).run().total_time;
        assert!(t_on <= t_off * (1.0 + 1e-9), "DLB slower: {t_on} vs {t_off}");
    });
}

/// More total work never finishes earlier.
#[test]
fn time_monotone_in_work() {
    let gen = (arb_work(6), f64_range(1e3, 1e6));
    check("time_monotone_in_work", PropConfig::cases(24), &gen, |(work, extra)| {
        let p = Platform::thunder();
        let t1 = scenario(work.clone(), p.clone(), false, AssemblyStrategy::Serial).run().total_time;
        let mut more = work.clone();
        more[0] += extra;
        let t2 = scenario(more, p, false, AssemblyStrategy::Serial).run().total_time;
        assert!(t2 >= t1 - 1e-12);
    });
}

/// The atomics strategy is never faster than multidependences on
/// either platform (their IPC factors are strictly ordered).
#[test]
fn atomics_never_beats_multidep() {
    check("atomics_never_beats_multidep", PropConfig::cases(24), &arb_work(8), |work| {
        for p in [Platform::mare_nostrum4(), Platform::thunder()] {
            let t_at =
                scenario(work.clone(), p.clone(), false, AssemblyStrategy::Atomics).run().total_time;
            let t_md =
                scenario(work.clone(), p, false, AssemblyStrategy::Multidep).run().total_time;
            assert!(t_md <= t_at * (1.0 + 1e-9));
        }
    });
}

/// The phase time is at least the balanced lower bound
/// (total work / total cores) and at most the serial upper bound.
#[test]
fn time_within_physical_bounds() {
    check("time_within_physical_bounds", PropConfig::cases(24), &arb_work(8), |work| {
        let p = Platform::mare_nostrum4();
        let total: f64 = work.iter().sum();
        let t = scenario(work.clone(), p.clone(), false, AssemblyStrategy::Serial).run().total_time;
        let steps = 2.0;
        let lower = steps * total / (p.core_speed() * 8.0);
        let upper = steps * total / p.core_speed() + 1.0; // + comm slack
        assert!(t >= lower * 0.999, "{t} < lower bound {lower}");
        assert!(t <= upper, "{t} > upper bound {upper}");
    });
}

/// With perfectly balanced work and no DLB, the makespan equals the
/// per-rank time (within comm costs).
#[test]
fn balanced_work_has_no_imbalance_penalty() {
    let gen = (f64_range(1e4, 1e6), usize_range(2, 16));
    check(
        "balanced_work_has_no_imbalance_penalty",
        PropConfig::cases(24),
        &gen,
        |&(w, n)| {
            let p = Platform::thunder();
            let work = vec![w; n];
            let r = scenario(work, p.clone(), false, AssemblyStrategy::Serial).run();
            let per_rank = 2.0 * w / p.core_speed();
            let comm_slack = 2.0 * 10.0 * p.comm_latency + 1e-6;
            assert!(
                r.total_time <= per_rank + comm_slack,
                "{} vs per-rank {}",
                r.total_time,
                per_rank
            );
        },
    );
}

/// Trace totals are consistent with the makespan: no phase interval
/// extends past the end of the run.
#[test]
fn trace_within_makespan() {
    check("trace_within_makespan", PropConfig::cases(24), &arb_work(5), |work| {
        let p = Platform::mare_nostrum4();
        let r = scenario(work.clone(), p, true, AssemblyStrategy::Multidep).run();
        for e in &r.trace.events {
            assert!(e.t_end <= r.total_time + 1e-12);
            assert!(e.t_start <= e.t_end);
        }
    });
}
