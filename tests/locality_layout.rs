//! Locality-layout acceptance tests: the opt-in hot path (RCM node
//! reordering, kind-batched SoA assembly, fused deterministic CG) must
//! be provably profitable and numerically pinned.
//!
//! * RCM: the permutation is a bijection, never increases CSR
//!   bandwidth on randomized airway/tube meshes, and measurably shrinks
//!   it on the canonical airway; `renumber_nodes` round-trips exactly.
//! * Batching: the monomorphized batch kernels produce **bit-identical**
//!   local element matrices for every `ElementKind`.
//! * Fused CG: residual history matches the serial reference within
//!   1e-12 relative on the airway pressure system, and the solve is
//!   bit-identical across pool sizes.

use cfpd_core::BoundaryConditions;
use cfpd_mesh::{generate_airway, AirwaySpec, TubeParams, Vec3};
use cfpd_partition::{bandwidth_under_perm, csr_bandwidth, invert_perm, rcm_perm};
use cfpd_runtime::ThreadPool;
use cfpd_solver::{
    assemble_poisson, cg_fused, cg_fused_history, cg_with_history, kernels, AssemblyPlan,
    AssemblyStrategy, CsrMatrix, ElementScratch, FluidProps, RefElement,
};
use cfpd_testkit::prop::{check, f64_range, map, usize_range, Gen, PropConfig};

/// Random (but valid) small airway specifications.
fn arb_spec() -> impl Gen<Value = AirwaySpec> {
    let raw = (
        usize_range(1, 3),       // generations 1..=2
        usize_range(6, 11),      // n_theta 6..=10
        usize_range(1, 3),       // n_bl_layers 1..=2
        usize_range(1, 3),       // n_core_rings 1..=2
        f64_range(0.6, 0.95),    // length ratio
        f64_range(20.0, 50.0),   // branch angle
    );
    map(raw, |(generations, n_theta, n_bl, n_core, lr, angle)| AirwaySpec {
        generations,
        tube: TubeParams {
            n_theta,
            n_bl_layers: n_bl,
            n_core_rings: n_core,
            ..TubeParams::default()
        },
        axial_segments_per_radius: 1.0,
        length_ratio: lr,
        branch_angle_deg: angle,
        ..AirwaySpec::default()
    })
}

/// RCM on random airway meshes: bijective, and the resulting bandwidth
/// never exceeds the generator's native ordering.
#[test]
fn rcm_is_bijective_and_never_widens_bandwidth() {
    check(
        "rcm_is_bijective_and_never_widens_bandwidth",
        PropConfig::cases(8),
        &arb_spec(),
        |spec| {
            let airway = generate_airway(spec).unwrap();
            let adj = airway.mesh.node_adjacency();
            let perm = rcm_perm(&adj);
            // Bijection: the inverse inverts.
            let inv = invert_perm(&perm);
            for (old, &new) in perm.iter().enumerate() {
                assert_eq!(inv[new as usize] as usize, old);
            }
            assert!(
                bandwidth_under_perm(&adj, &perm) <= csr_bandwidth(&adj),
                "RCM widened the bandwidth"
            );
        },
    );
}

/// Renumbering with a permutation and then its inverse restores every
/// coordinate and connectivity entry bit-for-bit, on random meshes.
#[test]
fn renumber_round_trips_on_random_meshes() {
    check(
        "renumber_round_trips_on_random_meshes",
        PropConfig::cases(6),
        &arb_spec(),
        |spec| {
            let reference = generate_airway(spec).unwrap().mesh;
            let mut mesh = generate_airway(spec).unwrap().mesh;
            let perm = rcm_perm(&mesh.node_adjacency());
            mesh.renumber_nodes(&perm);
            mesh.renumber_nodes(&invert_perm(&perm));
            assert_eq!(mesh.conn, reference.conn);
            for (a, b) in mesh.coords.iter().zip(&reference.coords) {
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
                assert_eq!(a.z.to_bits(), b.z.to_bits());
            }
        },
    );
}

/// On the canonical airway the generator's extrusion ordering is far
/// from optimal: RCM must deliver a real reduction, not a tie.
#[test]
fn rcm_shrinks_airway_bandwidth() {
    let airway = generate_airway(&AirwaySpec::small()).unwrap();
    let adj = airway.mesh.node_adjacency();
    let before = csr_bandwidth(&adj);
    let after = bandwidth_under_perm(&adj, &rcm_perm(&adj));
    assert!(
        after < before / 2,
        "RCM bandwidth {after} not < half of native {before}"
    );
}

/// The monomorphized batch kernels are bit-identical to the dynamic
/// kernels for every element of every kind (same loads, same FP
/// sequence — the foundation of the batching bit-identity policy).
#[test]
fn batch_kernels_bit_identical_per_element() {
    let mesh = generate_airway(&AirwaySpec::small()).unwrap().mesh;
    let refs = RefElement::all();
    let props = FluidProps::default();
    let dt = 1e-4;
    let gravity = Vec3::new(0.0, 0.0, -9.81);
    let velocity: Vec<Vec3> =
        mesh.coords.iter().map(|p| Vec3::new(p.z, -p.x, p.y * 0.5)).collect();
    let pressure: Vec<f64> = mesh.coords.iter().map(|p| p.z * 101.0).collect();

    let mut kinds_seen = std::collections::BTreeSet::new();
    let mut dyn_scratch = ElementScratch::default();
    let mut batch_scratch = ElementScratch::default();
    for e in 0..mesh.num_elements() {
        let kind = mesh.kinds[e];
        kinds_seen.insert(format!("{kind:?}"));
        let (_, nn) = dyn_scratch.load_with_pressure(&mesh, &velocity, &pressure, e);
        let h = mesh.volume(e).abs().cbrt();
        let dm = kernels::momentum_kernel(&refs, &dyn_scratch, kind, nn, props, dt, h, gravity)
            .unwrap();
        let dp = kernels::poisson_kernel(&refs, &dyn_scratch, kind, nn, props, dt).unwrap();

        let nodes = mesh.elem_nodes(e);
        batch_scratch.load_gather_with_pressure(&mesh.coords, &velocity, &pressure, nodes);
        let re = &refs[RefElement::index_of(kind)];
        let (bm, bp) = match nn {
            4 => (
                kernels::momentum_kernel_n::<4>(re, &batch_scratch, props, dt, h, gravity),
                kernels::poisson_kernel_n::<4>(re, &batch_scratch, props, dt),
            ),
            5 => (
                kernels::momentum_kernel_n::<5>(re, &batch_scratch, props, dt, h, gravity),
                kernels::poisson_kernel_n::<5>(re, &batch_scratch, props, dt),
            ),
            _ => (
                kernels::momentum_kernel_n::<6>(re, &batch_scratch, props, dt, h, gravity),
                kernels::poisson_kernel_n::<6>(re, &batch_scratch, props, dt),
            ),
        };
        let (bm, bp) = (bm.unwrap(), bp.unwrap());
        for i in 0..nn {
            for j in 0..nn {
                assert_eq!(
                    dm.a[i][j].to_bits(),
                    bm.a[i][j].to_bits(),
                    "elem {e} ({kind:?}) momentum a[{i}][{j}]"
                );
                assert_eq!(
                    dp.l[i][j].to_bits(),
                    bp.l[i][j].to_bits(),
                    "elem {e} ({kind:?}) poisson l[{i}][{j}]"
                );
            }
            for c in 0..3 {
                assert_eq!(
                    dm.b[i][c].to_bits(),
                    bm.b[i][c].to_bits(),
                    "elem {e} ({kind:?}) momentum b[{i}][{c}]"
                );
            }
            assert_eq!(
                dp.b[i].to_bits(),
                bp.b[i].to_bits(),
                "elem {e} ({kind:?}) poisson b[{i}]"
            );
        }
    }
    assert_eq!(kinds_seen.len(), 3, "hybrid mesh must exercise all kinds: {kinds_seen:?}");
}

/// Assemble the Dirichlet-closed airway pressure system (the actual
/// Solver2 workload) and its divergence RHS.
fn airway_pressure_system() -> (CsrMatrix, Vec<f64>) {
    let mesh = generate_airway(&AirwaySpec::small()).unwrap().mesh;
    let n2e = mesh.node_to_elements();
    let mut matrix = CsrMatrix::from_mesh(&mesh, &n2e);
    let n = mesh.num_nodes();
    let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
    let plan = AssemblyPlan::new(&mesh, elems, AssemblyStrategy::Serial, 1);
    let refs = RefElement::all();
    let pool = ThreadPool::new(1);
    let velocity: Vec<Vec3> =
        mesh.coords.iter().map(|p| Vec3::new(p.y, -p.z, 0.4 - p.x)).collect();
    let mut rhs = vec![vec![0.0; n]];
    assemble_poisson(
        &pool,
        &refs,
        &mesh,
        &plan,
        &velocity,
        FluidProps::default(),
        1e-4,
        &mut matrix,
        &mut rhs,
    );
    let bc = BoundaryConditions::from_mesh(&mesh);
    for &v in &bc.outlet_nodes {
        matrix.set_dirichlet_row(v as usize);
        rhs[0][v as usize] = 0.0;
    }
    (matrix, rhs.remove(0))
}

/// The fused parallel CG reproduces the serial reference's residual
/// history within the documented tolerance on the airway pressure
/// solve: 1e-12·(it+1) relative over the first 64 iterations (the
/// reduction regrouping injects ~1 ulp per iteration), and the final
/// solutions agree to 1e-8 relative.
#[test]
fn fused_cg_history_within_documented_tolerance_on_airway() {
    let (matrix, rhs) = airway_pressure_system();
    let n = matrix.n;
    let pool = ThreadPool::new(4);
    let mut x_serial = vec![0.0; n];
    let mut h_serial = Vec::new();
    let s_serial = cg_with_history(&matrix, &rhs, &mut x_serial, 1e-6, 500, Some(&mut h_serial));
    let mut x_fused = vec![0.0; n];
    let mut h_fused = Vec::new();
    let s_fused = cg_fused_history(&matrix, &rhs, &mut x_fused, 1e-6, 500, &pool, &mut h_fused);
    assert!(s_serial.converged && s_fused.converged);
    assert_eq!(h_serial.len(), h_fused.len(), "iteration counts diverged");
    for (it, (f, s)) in h_fused.iter().zip(&h_serial).enumerate().take(64) {
        assert!(
            (f - s).abs() <= 1e-12 * (it + 1) as f64 * s.abs().max(1e-300),
            "iter {it}: fused {f} vs serial {s} (rel {})",
            (f - s).abs() / s.abs().max(1e-300)
        );
    }
    // Past the early window the two finite-precision CG trajectories
    // drift apart (Lanczos sensitivity), but both stop at the same
    // tolerance and agree on the solution itself.
    let scale = x_serial.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
    for i in 0..n {
        assert!(
            (x_fused[i] - x_serial[i]).abs() <= 1e-8 * scale,
            "x[{i}]: {} vs {}",
            x_fused[i],
            x_serial[i]
        );
    }
}

/// The fused CG is bit-reproducible regardless of pool size on the real
/// airway system (fixed chunk decomposition, chunk-ordered reductions).
#[test]
fn fused_cg_bit_identical_across_pools_on_airway() {
    let (matrix, rhs) = airway_pressure_system();
    let n = matrix.n;
    let mut results = Vec::new();
    for workers in [1usize, 3, 8] {
        let pool = ThreadPool::new(workers);
        let mut x = vec![0.0; n];
        let s = cg_fused(&matrix, &rhs, &mut x, 1e-6, 500, &pool);
        results.push((x, s));
    }
    let (x_ref, s_ref) = &results[0];
    for (x, s) in &results[1..] {
        assert_eq!(s.iterations, s_ref.iterations);
        assert_eq!(s.residual.to_bits(), s_ref.residual.to_bits());
        for i in 0..n {
            assert_eq!(x[i].to_bits(), x_ref[i].to_bits(), "x[{i}] differs across pools");
        }
    }
}

/// Renumbering the mesh with RCM leaves element volumes bit-identical
/// (pure relabeling) while shrinking the bandwidth of the rebuilt CSR
/// pattern — the property the simulation-level hook relies on.
#[test]
fn renumbered_mesh_preserves_geometry_and_shrinks_pattern() {
    let reference = generate_airway(&AirwaySpec::small()).unwrap().mesh;
    let mut mesh = generate_airway(&AirwaySpec::small()).unwrap().mesh;
    let adj = mesh.node_adjacency();
    let before = csr_bandwidth(&adj);
    mesh.renumber_nodes(&rcm_perm(&adj));
    for e in 0..mesh.num_elements() {
        assert_eq!(
            mesh.volume(e).to_bits(),
            reference.volume(e).to_bits(),
            "volume of element {e} changed under renumbering"
        );
    }
    let after = csr_bandwidth(&mesh.node_adjacency());
    assert!(after < before, "bandwidth {after} !< {before}");
}
