//! Resilience suite for `cfpd serve` — the daemon's crash-safety,
//! retry, preemption and overload contracts, exercised end-to-end over
//! real HTTP against real daemons in-process.
//!
//! The headline property (mirroring `checkpoint_recovery.rs` one layer
//! up): **kill the daemon at any persistence cut point, restart it from
//! the leftovers, and the completed job's result is byte-identical to
//! an uninterrupted run's** — the WAL replays, the snapshot resumes,
//! and no work is silently lost or doubled.

use cfpd_campaign::{run_campaign, CampaignSpec};
use cfpd_serve::http::{http_call, http_call_raw};
use cfpd_serve::{lint_prometheus, Daemon, ServeConfig, ServeFaultPlan};
use std::path::PathBuf;
use std::time::Duration;

fn campaign_text(name: &str, steps: usize) -> String {
    format!(
        "[campaign]\nname = {name}\n[scenario]\nranks = 2\ngenerations = 1\n\
         particles = 40\nsteps = {steps}\n"
    )
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cfpd-resil-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn direct_json(text: &str) -> String {
    let spec = CampaignSpec::from_text(text).unwrap();
    run_campaign(&spec, Some(1)).render_json()
}

fn get(addr: &str, path: &str) -> (u16, String) {
    http_call(addr, "GET", path, "").expect("daemon reachable")
}

fn submit(addr: &str, text: &str) -> u64 {
    let (code, body) = http_call(addr, "POST", "/jobs", text).unwrap();
    assert_eq!(code, 201, "{body}");
    let v = cfpd_testkit::parse_json(&body).unwrap();
    v.get("job").and_then(|j| j.as_u64()).expect("job id in response")
}

/// Poll a job to a terminal state; returns its final status body.
fn poll_terminal(addr: &str, job: u64) -> String {
    for _ in 0..1500 {
        let (code, body) = get(addr, &format!("/jobs/{job}"));
        assert_eq!(code, 200, "{body}");
        for terminal in ["\"done\"", "\"failed\"", "\"cancelled\""] {
            if body.contains(terminal) {
                return body;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("job {job} never reached a terminal state");
}

fn result_of(addr: &str, job: u64) -> String {
    let status = poll_terminal(addr, job);
    assert!(status.contains("\"done\""), "job {job} not done: {status}");
    let (code, body) = get(addr, &format!("/jobs/{job}/result"));
    assert_eq!(code, 200, "{body}");
    body
}

#[test]
fn served_results_are_byte_identical_to_direct_runs() {
    let text = format!(
        "{}[matrix]\nlayout = default, opt\n",
        campaign_text("identical", 2)
    );
    let dir = tmp_dir("identical");
    let daemon = Daemon::start(ServeConfig {
        data_dir: dir.clone(),
        ..Default::default()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    let job = submit(&addr, &text);
    assert_eq!(result_of(&addr, job), direct_json(&text));
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole: sweep the persistence cut point over the whole life of
/// a job; at every cut, kill the daemon and restart from the leftovers.
/// Every restart must converge to the same bytes, and at least one cut
/// must resume mid-cell from a snapshot (proving the no-recomputation
/// path runs, not just queued-from-scratch recovery).
#[test]
fn kill_and_restart_converges_from_every_persistence_cut() {
    let text = campaign_text("killer", 4);
    let expected = direct_json(&text);
    let mut resumed_from: Vec<usize> = Vec::new();

    for cut in 0..12u64 {
        let dir = tmp_dir(&format!("kill-{cut}"));
        let crashed = Daemon::start(ServeConfig {
            data_dir: dir.clone(),
            workers: 1,
            http_threads: 1,
            fault: ServeFaultPlan { freeze_wal_after: Some(cut), ..Default::default() },
            ..Default::default()
        })
        .unwrap();
        let addr = crashed.addr().to_string();
        let job = submit(&addr, &text);
        // Run until the gate freezes (the simulated kill -9 instant) or
        // the job outruns the cut and finishes.
        for _ in 0..1500 {
            if crashed.gate_frozen() {
                break;
            }
            let (_, body) = get(&addr, &format!("/jobs/{job}"));
            if body.contains("\"done\"") {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        crashed.kill();

        // Restart from whatever reached disk.
        let revived = Daemon::start(ServeConfig {
            data_dir: dir.clone(),
            workers: 1,
            http_threads: 1,
            ..Default::default()
        })
        .unwrap();
        let addr = revived.addr().to_string();
        let (code, status) = get(&addr, &format!("/jobs/{job}"));
        let job = if code == 404 {
            // The crash predated the WAL submit record: the job is
            // simply gone, which is lost-request, not corruption.
            submit(&addr, &text)
        } else {
            assert_eq!(code, 200, "{status}");
            if let Some(v) = cfpd_testkit::parse_json(&status)
                .ok()
                .and_then(|v| v.get("resumed_step").and_then(|s| s.as_u64()))
            {
                assert!(v >= 1, "a recovered snapshot always has progress");
                resumed_from.push(v as usize);
            }
            job
        };
        assert_eq!(
            result_of(&addr, job),
            expected,
            "cut {cut}: restart did not converge to the uninterrupted bytes"
        );
        revived.kill();
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        !resumed_from.is_empty(),
        "no cut in the sweep resumed from a mid-cell snapshot; the \
         no-recomputation path was never exercised"
    );
}

/// Mirror of the checkpoint codec's corruption sweep, for the WAL:
/// truncations and bit flips never panic the replayer and never yield
/// records past the damage.
#[test]
fn wal_truncation_and_bitflip_sweep_never_confuses_replay() {
    use cfpd_serve::wal::{replay, Replay};

    // Produce a real WAL by running a job to completion.
    let text = campaign_text("waldonor", 3);
    let dir = tmp_dir("waldonor");
    let daemon =
        Daemon::start(ServeConfig { data_dir: dir.clone(), ..Default::default() }).unwrap();
    let addr = daemon.addr().to_string();
    let job = submit(&addr, &text);
    let _ = result_of(&addr, job);
    daemon.kill();

    let wal_path = dir.join("wal.log");
    let pristine = std::fs::read_to_string(&wal_path).unwrap();
    let full: Replay = replay(&wal_path);
    assert!(!full.corrupt_tail);
    assert!(full.records.len() >= 6, "expected a meaty WAL, got {}", full.records.len());

    let scratch = dir.join("scratch.log");
    // Truncations at every byte boundary of the last few records.
    let tail_start = pristine.len().saturating_sub(200);
    for cut in (tail_start..pristine.len()).step_by(7) {
        std::fs::write(&scratch, &pristine[..cut]).unwrap();
        let r = replay(&scratch);
        assert!(r.records.len() <= full.records.len());
        assert_eq!(r.records[..], full.records[..r.records.len()], "cut at byte {cut}");
    }
    // Bit flips sprinkled across the document.
    for pos in (0..pristine.len()).step_by(97) {
        let mut bytes = pristine.clone().into_bytes();
        bytes[pos] ^= 0x01;
        std::fs::write(&scratch, &bytes).unwrap();
        let r = replay(&scratch); // must not panic
        assert!(r.records.len() <= full.records.len(), "flip at byte {pos}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded crash on every cell's first attempt: the retry path must
/// kick in (with WAL'd backoff records) and still converge to the
/// uninterrupted bytes.
#[test]
fn seeded_crashes_retry_and_still_produce_identical_bytes() {
    let text = campaign_text("crashy", 3);
    let dir = tmp_dir("crashy");
    let daemon = Daemon::start(ServeConfig {
        data_dir: dir.clone(),
        workers: 1,
        backoff_base_ms: 1,
        fault: ServeFaultPlan { crash_first_attempts: 1, ..Default::default() },
        ..Default::default()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    let job = submit(&addr, &text);
    let result = result_of(&addr, job);
    assert_eq!(result, direct_json(&text), "retried job must match clean bytes");
    let (_, status) = get(&addr, &format!("/jobs/{job}"));
    let v = cfpd_testkit::parse_json(&status).unwrap();
    assert!(
        v.get("retries").and_then(|r| r.as_u64()).unwrap_or(0) >= 1,
        "the crash must be visible as a retry: {status}"
    );
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cell that exhausts its retries fails *as a cell*; the job still
/// completes and reports the failure in the canonical report.
#[test]
fn retry_exhaustion_fails_the_cell_not_the_daemon() {
    let text = campaign_text("doomed", 2);
    let dir = tmp_dir("doomed");
    let daemon = Daemon::start(ServeConfig {
        data_dir: dir.clone(),
        workers: 1,
        retry_max: 1,
        backoff_base_ms: 1,
        fault: ServeFaultPlan { crash_first_attempts: 10, ..Default::default() },
        ..Default::default()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    let job = submit(&addr, &text);
    let status = poll_terminal(&addr, job);
    assert!(status.contains("\"done\""), "job completes even with a dead cell: {status}");
    assert!(status.contains("\"cells_failed\":1"), "{status}");
    let (code, body) = get(&addr, &format!("/jobs/{job}/result"));
    assert_eq!(code, 200);
    assert!(body.contains("injected: seeded worker crash"), "{body}");
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint-backed preemption: on a one-slot node, a short job
/// admitted behind a long one finishes first; the long job parks on a
/// snapshot, resumes, and its bytes are unchanged.
#[test]
fn preemption_lets_a_short_job_jump_a_long_one_without_changing_bytes() {
    let long_text = campaign_text("longjob", 30);
    let short_text = campaign_text("shortjob", 1);
    let dir = tmp_dir("preempt");
    let daemon = Daemon::start(ServeConfig {
        data_dir: dir.clone(),
        workers: 1,
        http_threads: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = daemon.addr().to_string();

    let long_job = submit(&addr, &long_text);
    // Wait until the long job actually holds the slot.
    for _ in 0..500 {
        let (_, body) = get(&addr, &format!("/jobs/{long_job}"));
        if body.contains("\"running\"") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let short_job = submit(&addr, &short_text);

    // The short job must finish while the long one is still live.
    let _short_result = result_of(&addr, short_job);
    let (_, long_status) = get(&addr, &format!("/jobs/{long_job}"));
    assert!(
        !long_status.contains("\"done\""),
        "the long job should still be working when the short one finishes: {long_status}"
    );

    assert_eq!(
        result_of(&addr, long_job),
        direct_json(&long_text),
        "preemption must not change the long job's bytes"
    );
    let (_, metrics) = get(&addr, "/metrics");
    assert!(
        metrics.contains("cfpd_serve_preemptions"),
        "preemption must be observable on /metrics"
    );
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overload sheds with 503 + Retry-After instead of queueing without
/// bound, and the shedding is visible on /metrics.
#[test]
fn overload_sheds_503_with_retry_after() {
    let dir = tmp_dir("overload");
    let daemon = Daemon::start(ServeConfig {
        data_dir: dir.clone(),
        workers: 1,
        queue_cap: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = daemon.addr().to_string();

    let long = campaign_text("occupier", 30);
    let _job = submit(&addr, &long);
    let raw = http_call_raw(&addr, "POST", "/jobs", &campaign_text("shed", 1)).unwrap();
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    let raw_lower = raw.to_lowercase();
    assert!(raw_lower.contains("retry-after:"), "shed response must carry Retry-After: {raw}");

    let (code, metrics) = get(&addr, "/metrics");
    assert_eq!(code, 200);
    assert!(metrics.contains("cfpd_serve_jobs_shed"), "{metrics}");
    assert!(metrics.contains("cfpd_serve_queue_depth"), "{metrics}");
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-job deadline budgets: an admitted job past its budget fails with
/// a `deadline:` reason instead of running forever.
#[test]
fn job_deadlines_fail_overdue_jobs() {
    let dir = tmp_dir("deadline");
    let daemon = Daemon::start(ServeConfig {
        data_dir: dir.clone(),
        workers: 1,
        job_deadline: Some(Duration::ZERO),
        ..Default::default()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    let job = submit(&addr, &campaign_text("late", 2));
    let status = poll_terminal(&addr, job);
    assert!(status.contains("\"failed\""), "{status}");
    assert!(status.contains("deadline"), "{status}");
    let (code, body) = get(&addr, &format!("/jobs/{job}/result"));
    assert_eq!(code, 409, "{body}");
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancellation: queued jobs cancel immediately; running jobs cancel at
/// the next segment boundary.
#[test]
fn cancellation_is_honoured_at_segment_boundaries() {
    let dir = tmp_dir("cancel");
    let daemon = Daemon::start(ServeConfig {
        data_dir: dir.clone(),
        workers: 1,
        http_threads: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    let running = submit(&addr, &campaign_text("victim", 30));
    for _ in 0..500 {
        let (_, body) = get(&addr, &format!("/jobs/{running}"));
        if body.contains("\"running\"") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued = submit(&addr, &campaign_text("waiting", 30));

    let (code, body) = http_call(&addr, "DELETE", &format!("/jobs/{queued}"), "").unwrap();
    assert_eq!(code, 200, "queued job cancels immediately: {body}");
    let (code, body) = http_call(&addr, "DELETE", &format!("/jobs/{running}"), "").unwrap();
    assert_eq!(code, 202, "running job cancels at the next boundary: {body}");
    let status = poll_terminal(&addr, running);
    assert!(status.contains("\"cancelled\""), "{status}");
    let (code, _) = http_call(&addr, "DELETE", &format!("/jobs/{running}"), "").unwrap();
    assert_eq!(code, 409, "double cancel is a conflict");
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hetero-keyed jobs go through the daemon like any other scenario key:
/// a campaign skewing rank speeds under the predictive policy is
/// accepted, runs to done, and serves bytes identical to a direct run
/// (the profile is timing-only, so determinism must survive it).
#[test]
fn hetero_keyed_jobs_serve_byte_identical_results() {
    let text = format!(
        "{}hetero = mn4_thunder\ndlb = on\ndlb_policy = predictive\n",
        campaign_text("skewed", 2)
    );
    let dir = tmp_dir("hetero");
    let daemon =
        Daemon::start(ServeConfig { data_dir: dir.clone(), ..Default::default() }).unwrap();
    let addr = daemon.addr().to_string();
    let job = submit(&addr, &text);
    assert_eq!(result_of(&addr, job), direct_json(&text));
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A submission with an unknown scenario key is rejected with a 400
/// whose body names the offending key and its line — the operator can
/// fix the spec without reading daemon logs.
#[test]
fn unknown_scenario_keys_reject_with_offender_and_line() {
    let dir = tmp_dir("badkey");
    let daemon =
        Daemon::start(ServeConfig { data_dir: dir.clone(), ..Default::default() }).unwrap();
    let addr = daemon.addr().to_string();

    // Line 8 of the submitted text carries the typo'd key.
    let text = format!("{}heterro = mn4_thunder\n", campaign_text("typo", 2));
    let (code, body) = http_call(&addr, "POST", "/jobs", &text).unwrap();
    assert_eq!(code, 400, "{body}");
    assert!(body.contains("bad campaign spec"), "{body}");
    assert!(body.contains("heterro"), "400 must name the offending key: {body}");
    assert!(body.contains("line 8"), "400 must name the offending line: {body}");

    // A known key with a bogus value is diagnosed just as precisely.
    let text = format!("{}hetero = warp9\n", campaign_text("bogus", 2));
    let (code, body) = http_call(&addr, "POST", "/jobs", &text).unwrap();
    assert_eq!(code, 400, "{body}");
    assert!(body.contains("warp9"), "{body}");
    assert!(body.contains("line 8"), "{body}");
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// /metrics is valid Prometheus exposition under the strict lint, with
/// the supervisor's counters present.
#[test]
fn metrics_lint_clean_with_supervisor_series() {
    let dir = tmp_dir("metrics");
    let daemon =
        Daemon::start(ServeConfig { data_dir: dir.clone(), ..Default::default() }).unwrap();
    let addr = daemon.addr().to_string();
    let job = submit(&addr, &campaign_text("observed", 2));
    let _ = result_of(&addr, job);
    let (code, metrics) = get(&addr, "/metrics");
    assert_eq!(code, 200);
    let samples = lint_prometheus(&metrics).expect("metrics must lint clean");
    assert!(samples > 10, "expected a rich document, got {samples} samples");
    for series in [
        "cfpd_serve_jobs_submitted",
        "cfpd_serve_jobs_done",
        "cfpd_serve_checkpoints",
        "cfpd_serve_wal_appends",
        "cfpd_serve_queue_depth",
        "cfpd_serve_state_done",
    ] {
        assert!(metrics.contains(series), "missing {series}");
    }
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drain: running jobs park on their checkpoints, the daemon exits, and
/// a fresh daemon on the same data dir resumes them to the same bytes.
#[test]
fn drain_parks_running_jobs_and_a_restart_finishes_them() {
    let text = campaign_text("drainee", 30);
    let dir = tmp_dir("drain");
    let daemon = Daemon::start(ServeConfig {
        data_dir: dir.clone(),
        workers: 1,
        http_threads: 1,
        ..Default::default()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    let job = submit(&addr, &text);
    for _ in 0..500 {
        let (_, body) = get(&addr, &format!("/jobs/{job}"));
        if body.contains("\"running\"") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let (code, body) = http_call(&addr, "POST", "/drain", "").unwrap();
    assert_eq!((code, body.as_str()), (200, "draining\n"));
    daemon.join(); // graceful: returns once workers have parked

    let revived =
        Daemon::start(ServeConfig { data_dir: dir.clone(), ..Default::default() }).unwrap();
    let addr = revived.addr().to_string();
    let (code, status) = get(&addr, &format!("/jobs/{job}"));
    assert_eq!(code, 200, "{status}");
    assert_eq!(result_of(&addr, job), direct_json(&text));
    revived.kill();
    let _ = std::fs::remove_dir_all(&dir);
}
