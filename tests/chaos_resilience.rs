//! Chaos-layer resilience suite: the deterministic fault schedule, LeWI
//! core conservation under stall/crash scripts, golden-file stability
//! with chaos compiled in but disabled, and checkpoint/restart
//! invisibility in the golden document.

use cfpd_core::{golden_config, golden_trace, golden_trace_split, Checkpoint};
use cfpd_dlb::{DlbNode, GrantPolicy, LendPolicy};
use cfpd_runtime::ThreadPool;
use cfpd_simmpi::{FaultConfig, FaultPlan};
use cfpd_testkit::prop::{self, usize_range, PropConfig};
use cfpd_testkit::rng::Rng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Fault schedule determinism
// ---------------------------------------------------------------------

/// Property: the fault plan is a pure function of the seed and the
/// message coordinates — two plans with the same seed agree on every
/// decision, and a different seed produces a different schedule
/// somewhere (no degenerate constant plans).
#[test]
fn prop_fault_schedule_is_pure_in_the_seed() {
    prop::check(
        "same seed, same schedule",
        PropConfig::cases(40),
        &usize_range(0, 1 << 20),
        |&seed| {
            let a = FaultPlan::new(FaultConfig::benign(seed as u64));
            let b = FaultPlan::new(FaultConfig::benign(seed as u64));
            for seq in 0..64 {
                for tag in [0u64, 10, 11, u64::MAX - 2] {
                    assert_eq!(
                        a.decide_send(0, 0, 1, tag, seq),
                        b.decide_send(0, 0, 1, tag, seq),
                        "seed {seed} tag {tag} seq {seq}"
                    );
                }
                assert_eq!(a.decide_stall(0, seq), b.decide_stall(0, seq));
            }
        },
    );
}

/// Decisions must not depend on query order (a plan is stateless): ask
/// for the same coordinates twice, interleaved with other queries.
#[test]
fn fault_schedule_is_stateless_across_query_order() {
    let plan = FaultPlan::new(FaultConfig::benign(99));
    let forward: Vec<_> = (0..100).map(|s| plan.decide_send(1, 0, 1, 10, s)).collect();
    // Interleave unrelated queries, then ask in reverse order.
    for s in 0..50 {
        plan.decide_send(2, 1, 0, 7, s);
        plan.decide_stall(1, s);
    }
    let backward: Vec<_> = (0..100)
        .rev()
        .map(|s| plan.decide_send(1, 0, 1, 10, s))
        .collect();
    let backward: Vec<_> = backward.into_iter().rev().collect();
    assert_eq!(forward, backward);
}

// ---------------------------------------------------------------------
// LeWI conservation under chaos (stalls, crashes, lease sweeps)
// ---------------------------------------------------------------------

/// Random stall/crash/sweep scripts against one DLB node: after every
/// operation the core-conservation invariant of `DlbNode::conservation`
/// must hold — chaos may move cores, never mint or leak them.
fn lewi_chaos_script(lend: LendPolicy, grant: GrantPolicy, seed: u64) {
    const RANKS: usize = 4;
    const OWNED: usize = 2;
    let node = DlbNode::with_lease(lend, grant, Some(Duration::ZERO));
    for r in 0..RANKS {
        node.register(r, Arc::new(ThreadPool::new(2 * OWNED)), OWNED);
    }
    let mut rng = Rng::new(seed);
    // blocked[r] mirrors what the script has done; crashes are sticky.
    let mut blocked = [false; RANKS];
    let mut crashed = [false; RANKS];
    for op in 0..200 {
        let r = rng.range_usize(0, RANKS);
        match rng.range_usize(0, 10) {
            // Stall entry: the rank blocks (lends).
            0..=3 => {
                if !blocked[r] && !crashed[r] {
                    node.lend(r);
                    blocked[r] = true;
                }
            }
            // Stall exit: the rank unblocks (reclaims).
            4..=6 => {
                if blocked[r] && !crashed[r] {
                    node.reclaim(r);
                    blocked[r] = false;
                }
            }
            // Lease sweep (the on_timeout path). Zero-length lease: every
            // blocked rank's kept core is donated immediately.
            7..=8 => {
                node.sweep_leases();
            }
            // Fail-silent crash (rare; at most half the ranks so the
            // node keeps survivors).
            _ => {
                if crashed.iter().filter(|&&c| c).count() < RANKS / 2 && !crashed[r] {
                    node.mark_crashed(r);
                    crashed[r] = true;
                    blocked[r] = true;
                }
            }
        }
        let (have, want) = node.conservation();
        assert_eq!(
            have, want,
            "core conservation broken after op {op} (seed {seed}, {lend:?}/{grant:?})"
        );
    }
    // Recovery: every surviving blocked rank reclaims; conservation must
    // still hold at quiescence.
    for r in 0..RANKS {
        if blocked[r] && !crashed[r] {
            node.reclaim(r);
        }
    }
    let (have, want) = node.conservation();
    assert_eq!(have, want, "conservation broken at quiescence (seed {seed})");
}

#[test]
fn lewi_conserves_cores_under_chaos_keepone_even() {
    for seed in 0..12 {
        lewi_chaos_script(LendPolicy::KeepOne, GrantPolicy::Even, seed);
    }
}

#[test]
fn lewi_conserves_cores_under_chaos_lendall_neediest() {
    for seed in 0..12 {
        lewi_chaos_script(LendPolicy::LendAll, GrantPolicy::Neediest, seed);
    }
}

/// The predictive policy's pre-lend path under the same chaos regime:
/// a live `ImbalancePredictor` plans surpluses from noisy observations
/// (including wild mispredictions that trip its reactive fallback), the
/// node executes them via `pre_lend`, and core conservation must hold
/// after every operation — a wrong forecast may waste a lend, never
/// mint or leak a core.
fn predictive_chaos_script(seed: u64) {
    use cfpd_hetero::{ImbalancePredictor, PredictorConfig};

    const RANKS: usize = 4;
    const OWNED: usize = 2;
    let node = DlbNode::with_lease(LendPolicy::KeepOne, GrantPolicy::Even, Some(Duration::ZERO));
    for r in 0..RANKS {
        node.register(r, Arc::new(ThreadPool::new(2 * OWNED)), OWNED);
    }
    let skewed = [1.0, 0.25, 1.0, 0.25];
    let p = ImbalancePredictor::calibrated(RANKS, OWNED, &skewed, PredictorConfig::default());
    let mut rng = Rng::new(seed);
    let mut blocked = [false; RANKS];
    for op in 0..200 {
        let r = rng.range_usize(0, RANKS);
        match rng.range_usize(0, 10) {
            // Pre-lend whatever the model currently forecasts as
            // surplus; partial grants re-score the model's prediction.
            0..=2 => {
                if !blocked[r] {
                    let want = p.plan(r);
                    if want > 0 {
                        let got = node.pre_lend(r, want);
                        if got != want {
                            p.note_allocation(r, (OWNED - got) as f64);
                        }
                    }
                }
            }
            // Blocking call: lend, then feed the model a measured wait.
            // One in four waits is wildly off the forecast, tripping the
            // fallback-to-reactive path mid-script.
            3..=5 => {
                if !blocked[r] {
                    node.lend(r);
                    blocked[r] = true;
                    let wait = if rng.range_usize(0, 4) == 0 {
                        1.0e6
                    } else {
                        rng.range_usize(0, 100) as f64 * 1e-3
                    };
                    p.feedback(r, wait);
                }
            }
            // Unblock: reclaim and feed a fresh useful-time observation.
            6..=8 => {
                if blocked[r] {
                    node.reclaim(r);
                    blocked[r] = false;
                    let useful = rng.range_usize(1, 50) as f64 * 1e-2;
                    p.observe(r, useful, OWNED as f64);
                }
            }
            // Lease sweep donates every blocked rank's kept core.
            _ => {
                node.sweep_leases();
            }
        }
        let (have, want) = node.conservation();
        assert_eq!(
            have, want,
            "core conservation broken after op {op} (seed {seed}, predictive)"
        );
    }
    for r in 0..RANKS {
        if blocked[r] {
            node.reclaim(r);
        }
    }
    let (have, want) = node.conservation();
    assert_eq!(have, want, "conservation broken at quiescence (seed {seed}, predictive)");
    // The misprediction branch must actually have fired somewhere in
    // the script, or the fallback path went untested.
    assert!(p.stats().fallbacks > 0, "seed {seed}: no misprediction ever tripped fallback");
}

#[test]
fn predictive_pre_lending_conserves_cores_under_chaos() {
    for seed in 0..12 {
        predictive_chaos_script(seed);
    }
}

// ---------------------------------------------------------------------
// Golden-file guards
// ---------------------------------------------------------------------

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/sync_small.golden")
}

/// With the chaos layer compiled in but no fault plan configured, the
/// golden document must remain byte-identical to the checked-in file:
/// the whole fault machinery is free of observable side effects when
/// disabled.
#[test]
fn chaos_disabled_keeps_the_golden_file_byte_identical() {
    let expected = std::fs::read_to_string(golden_path()).expect("golden file present");
    let actual = golden_trace(&golden_config(), 2);
    assert_eq!(actual, expected, "disabled chaos layer perturbed the golden trace");
}

/// Checkpoint/restart acceptance gate: splitting the canonical run at a
/// step boundary (checkpoint → text round-trip → restore) renders the
/// *same bytes* as the checked-in golden file.
#[test]
fn checkpoint_restart_split_matches_the_golden_file() {
    let expected = std::fs::read_to_string(golden_path()).expect("golden file present");
    let cfg = golden_config();
    for split in 1..cfg.steps {
        let actual = golden_trace_split(&cfg, 2, split);
        assert_eq!(actual, expected, "split after step {split} is visible in the golden file");
    }
}

/// The checkpoint text codec is stable across a double round-trip and
/// the digest spots single-character corruption anywhere in the body.
#[test]
fn checkpoint_codec_round_trips_through_the_real_simulation() {
    use cfpd_core::{run_simulation_opts, RunOptions};
    let mut cfg = golden_config();
    cfg.airway.generations = 1;
    cfg.num_particles = 50;
    cfg.steps = 2;
    let r = run_simulation_opts(
        &cfg,
        2,
        1,
        &RunOptions { checkpoint_at: Some(1), ..Default::default() },
    );
    let cp = r.checkpoint.expect("checkpoint captured");
    let text = cp.to_text();
    let once = Checkpoint::from_text(&text).expect("first round-trip");
    assert_eq!(once.to_text(), text, "codec is not a fixed point");
    assert_eq!(once, cp);
}
