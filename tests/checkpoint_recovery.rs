//! Checkpoint corruption-path recovery.
//!
//! Every way a checkpoint file can go bad on disk — truncation at an
//! arbitrary byte, a flipped digest digit, a header rewritten to point
//! at the wrong step — must surface as `Err` from the codec or the
//! validator, never a panic, and must leave the run resumable from the
//! previous *good* checkpoint: restoring that one and finishing the run
//! reproduces the uninterrupted logical log exactly.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cfpd_core::{golden_config, run_simulation_opts, Checkpoint, RunOptions, SimulationConfig};

const RANKS: usize = 2;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfpd_ckpt_test_{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

fn capture_at(config: &SimulationConfig, step: usize) -> Checkpoint {
    let r = run_simulation_opts(
        config,
        RANKS,
        1,
        &RunOptions { checkpoint_at: Some(step), ..Default::default() },
    );
    r.checkpoint.expect("checkpoint captured")
}

/// A checkpoint file cut off at any byte offset parses to `Err`, never
/// a panic and never a silently-shortened checkpoint.
#[test]
fn truncated_file_is_an_error_at_every_cut_point() {
    let cp = capture_at(&golden_config(), 1);
    let text = cp.to_text();
    let path = scratch("truncated.ckpt");

    // Sweep cut points across the whole file, including mid-line cuts.
    // (Dropping only the final newline is legal — `lines()` accepts an
    // unterminated last line — so the deepest cut also removes the last
    // payload character.)
    let cuts: Vec<usize> = (1..20)
        .map(|i| i * text.len() / 20)
        .chain([text.len() - 2])
        .collect();
    for cut in cuts {
        fs::write(&path, &text.as_bytes()[..cut]).expect("write truncated file");
        let read_back = fs::read_to_string(&path).expect("read truncated file");
        let err = Checkpoint::from_text(&read_back)
            .expect_err(&format!("cut at byte {cut}/{} must not parse", text.len()));
        assert!(!err.is_empty());
    }

    // The untruncated file still parses: the loop above failed because
    // of the cuts, not some unrelated file problem.
    fs::write(&path, &text).expect("write full file");
    let full = fs::read_to_string(&path).expect("read full file");
    assert_eq!(Checkpoint::from_text(&full).expect("full file parses"), cp);
}

/// Flipping a single digit of the header digest is caught even though
/// the body is intact — and the error names both digests.
#[test]
fn flipped_digest_is_rejected() {
    let cp = capture_at(&golden_config(), 1);
    let text = cp.to_text();

    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    assert!(lines[1].starts_with("digest "));
    let flipped: String = lines[1]
        .chars()
        .map(|c| match c {
            '0' => '1',
            '1' => '0',
            other => other,
        })
        .collect();
    assert_ne!(flipped, lines[1], "digest line must actually change");
    lines[1] = flipped;

    let err = Checkpoint::from_text(&(lines.join("\n") + "\n")).unwrap_err();
    assert!(err.contains("digest mismatch"), "unexpected error: {err}");
}

/// A payload flip deep in the body is equally fatal: the digest covers
/// every value, not just the header.
#[test]
fn flipped_payload_is_rejected() {
    let cp = capture_at(&golden_config(), 1);
    let text = cp.to_text();

    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let idx = lines
        .iter()
        .position(|l| l.starts_with("P "))
        .expect("checkpoint has a pressure line");
    let flipped: String = lines[idx]
        .chars()
        .map(|c| match c {
            'a' => 'b',
            'b' => 'a',
            '3' => '4',
            '4' => '3',
            other => other,
        })
        .collect();
    if flipped == lines[idx] {
        // All-zero payload: flip a zero instead.
        lines[idx] = lines[idx].replacen('0', "f", 1);
    } else {
        lines[idx] = flipped;
    }

    let err = Checkpoint::from_text(&(lines.join("\n") + "\n")).unwrap_err();
    assert!(err.contains("digest mismatch"), "unexpected error: {err}");
}

/// A checkpoint whose `next_step` points beyond the run, or that was
/// taken under a different configuration or rank count, is refused by
/// the validator with an `Err` — the caller decides what to do next.
#[test]
fn wrong_step_and_wrong_config_restarts_are_errors() {
    let config = golden_config();
    let cp = capture_at(&config, 1);

    // Wrong step: past the end of the run.
    let mut wrong_step = cp.clone();
    wrong_step.next_step = config.steps + 5;
    let err = wrong_step.validate_for(&config, RANKS).unwrap_err();
    assert!(err.contains("beyond"), "unexpected error: {err}");

    // Wrong universe shape.
    let err = cp.validate_for(&config, RANKS + 1).unwrap_err();
    assert!(err.contains("ranks"), "unexpected error: {err}");

    // Wrong configuration.
    let other = SimulationConfig { seed: config.seed + 1, ..config.clone() };
    let err = cp.validate_for(&other, RANKS).unwrap_err();
    assert!(err.contains("config digest"), "unexpected error: {err}");

    // The genuine article still validates.
    cp.validate_for(&config, RANKS).expect("good checkpoint validates");
}

/// The recovery story end to end: the newest checkpoint file is
/// corrupt, so the driver falls back to the previous one — and the
/// resumed run is indistinguishable from the uninterrupted run.
#[test]
fn run_resumes_from_previous_checkpoint_after_corruption() {
    let config = golden_config();

    // Uninterrupted reference run.
    let full = run_simulation_opts(&config, RANKS, 1, &RunOptions::default());

    // Two generations of checkpoint files on disk: step 1 (older, good)
    // and step 2 (newer, corrupted in transit).
    let cp1 = capture_at(&config, 1);
    let cp2 = capture_at(&config, 2);
    let good_path = scratch("step1.ckpt");
    let bad_path = scratch("step2.ckpt");
    fs::write(&good_path, cp1.to_text()).expect("write step-1 checkpoint");
    let corrupt = {
        let text = cp2.to_text();
        let cut = text.len() * 3 / 4;
        text[..cut].to_string()
    };
    fs::write(&bad_path, corrupt).expect("write corrupted step-2 checkpoint");

    // Restart driver logic: newest first, fall back on error.
    let newest = fs::read_to_string(&bad_path).expect("read newest");
    assert!(
        Checkpoint::from_text(&newest).is_err(),
        "corrupted newest checkpoint must be rejected"
    );
    let previous = fs::read_to_string(&good_path).expect("read previous");
    let restored = Checkpoint::from_text(&previous).expect("previous checkpoint parses");
    restored.validate_for(&config, RANKS).expect("previous checkpoint validates");

    // Resume and stitch: steps before the split from the reference run,
    // the rest from the resumed run.
    let resumed = run_simulation_opts(
        &config,
        RANKS,
        1,
        &RunOptions { restore: Some(Arc::new(restored)), ..Default::default() },
    );
    assert_eq!(resumed.census, full.census, "restored run changed the particle census");
    let tail_expected: Vec<_> =
        full.logical.iter().filter(|e| e.step() >= 1).cloned().collect();
    assert_eq!(
        resumed.logical, tail_expected,
        "resumed run diverged from the uninterrupted run"
    );
}
