//! Property-based cross-crate tests: on randomized airway meshes, the
//! three assembly strategies must produce the same matrix as the serial
//! reference, colorings must be valid, and subdomain decompositions
//! must partition the element set with correct adjacency. Runs on the
//! in-repo `cfpd-testkit` property runner (no external dependencies).

use cfpd_mesh::{generate_airway, AirwaySpec, TubeParams, Vec3};
use cfpd_partition::{decompose_subdomains, greedy_coloring, local_element_graph, Graph};
use cfpd_runtime::ThreadPool;
use cfpd_solver::{
    assemble_momentum, assemble_momentum_batched, AssemblyPlan, AssemblyStrategy, CsrMatrix,
    FluidProps, RefElement,
};
use cfpd_testkit::prop::{check, f64_range, map, usize_range, Gen, PropConfig};

/// Random (but valid) small airway specifications.
fn arb_spec() -> impl Gen<Value = AirwaySpec> {
    let raw = (
        usize_range(1, 3),       // generations 1..=2
        usize_range(6, 11),      // n_theta 6..=10
        usize_range(1, 3),       // n_bl_layers 1..=2
        usize_range(1, 3),       // n_core_rings 1..=2
        f64_range(0.6, 0.95),    // length ratio
        f64_range(20.0, 50.0),   // branch angle
    );
    map(raw, |(generations, n_theta, n_bl, n_core, lr, angle)| AirwaySpec {
        generations,
        tube: TubeParams {
            n_theta,
            n_bl_layers: n_bl,
            n_core_rings: n_core,
            ..TubeParams::default()
        },
        axial_segments_per_radius: 1.0,
        length_ratio: lr,
        branch_angle_deg: angle,
        ..AirwaySpec::default()
    })
}

/// The headline invariant of §3.1: parallelization must not change
/// the assembled system.
#[test]
fn strategies_assemble_identical_matrices() {
    let gen = (arb_spec(), usize_range(4, 32));
    check(
        "strategies_assemble_identical_matrices",
        PropConfig::cases(8),
        &gen,
        |(spec, n_sub)| {
            let airway = generate_airway(spec).unwrap();
            let mesh = &airway.mesh;
            let n2e = mesh.node_to_elements();
            let template = CsrMatrix::from_mesh(mesh, &n2e);
            let refs = RefElement::all();
            let pool = ThreadPool::new(4);
            let velocity: Vec<Vec3> =
                mesh.coords.iter().map(|p| Vec3::new(p.z, -p.x, p.y * 0.5)).collect();
            let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();

            let mut results = Vec::new();
            for strategy in AssemblyStrategy::ALL {
                let plan = AssemblyPlan::new(mesh, elems.clone(), strategy, *n_sub);
                let mut a = template.clone();
                let mut rhs = vec![vec![0.0; mesh.num_nodes()]; 3];
                let zero_p = vec![0.0; mesh.num_nodes()];
                assemble_momentum(
                    &pool,
                    &refs,
                    mesh,
                    &plan,
                    &velocity,
                    &zero_p,
                    FluidProps::default(),
                    1e-4,
                    Vec3::new(0.0, 0.0, -9.81),
                    &mut a,
                    &mut rhs,
                );
                results.push(a.values);
            }
            let reference = &results[0];
            for (k, vals) in results.iter().enumerate().skip(1) {
                for (i, (x, y)) in vals.iter().zip(reference).enumerate() {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() <= 1e-9 * scale,
                        "strategy {k} entry {i}: {x} vs {y}"
                    );
                }
            }
        },
    );
}

/// The kind-batched SoA assembly (opt-in `LayoutPlan` path) agrees with
/// the serial unbatched reference under all four strategies on random
/// meshes — batching regroups the element summation order (by kind /
/// per unit) but must not change the assembled system beyond FP
/// reassociation.
#[test]
fn batched_assembly_matches_reference_under_all_strategies() {
    let gen = (arb_spec(), usize_range(4, 32));
    check(
        "batched_assembly_matches_reference_under_all_strategies",
        PropConfig::cases(6),
        &gen,
        |(spec, n_sub)| {
            let airway = generate_airway(spec).unwrap();
            let mesh = &airway.mesh;
            let n2e = mesh.node_to_elements();
            let template = CsrMatrix::from_mesh(mesh, &n2e);
            let refs = RefElement::all();
            let pool = ThreadPool::new(4);
            let velocity: Vec<Vec3> =
                mesh.coords.iter().map(|p| Vec3::new(p.z, -p.x, p.y * 0.5)).collect();
            let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
            let zero_p = vec![0.0; mesh.num_nodes()];

            let assemble = |batched: bool, strategy: AssemblyStrategy| {
                let plan = if batched {
                    AssemblyPlan::with_batches(mesh, elems.clone(), strategy, *n_sub, &template)
                } else {
                    AssemblyPlan::new(mesh, elems.clone(), strategy, *n_sub)
                };
                let mut a = template.clone();
                let mut rhs = vec![vec![0.0; mesh.num_nodes()]; 3];
                let f = if batched { assemble_momentum_batched } else { assemble_momentum };
                f(
                    &pool,
                    &refs,
                    mesh,
                    &plan,
                    &velocity,
                    &zero_p,
                    FluidProps::default(),
                    1e-4,
                    Vec3::new(0.0, 0.0, -9.81),
                    &mut a,
                    &mut rhs,
                );
                (a.values, rhs)
            };

            let (vals_ref, rhs_ref) = assemble(false, AssemblyStrategy::Serial);
            for strategy in AssemblyStrategy::ALL {
                let (vals, rhs) = assemble(true, strategy);
                for (i, (x, y)) in vals.iter().zip(&vals_ref).enumerate() {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() <= 1e-9 * scale,
                        "batched {strategy:?} entry {i}: {x} vs {y}"
                    );
                }
                for c in 0..3 {
                    for (i, (x, y)) in rhs[c].iter().zip(&rhs_ref[c]).enumerate() {
                        let scale = x.abs().max(y.abs()).max(1.0);
                        assert!(
                            (x - y).abs() <= 1e-9 * scale,
                            "batched {strategy:?} rhs[{c}][{i}]: {x} vs {y}"
                        );
                    }
                }
            }
        },
    );
}

/// Colorings over random meshes are proper colorings.
#[test]
fn coloring_always_valid() {
    check("coloring_always_valid", PropConfig::cases(8), &arb_spec(), |spec| {
        let airway = generate_airway(spec).unwrap();
        let n2e = airway.mesh.node_to_elements();
        let adj = airway.mesh.element_adjacency(&n2e);
        let g = Graph::from_csr_unit(&adj);
        let coloring = greedy_coloring(&g);
        assert!(coloring.is_valid(&g));
        // Bounded by max degree + 1.
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap_or(0);
        assert!(coloring.num_colors <= max_deg + 1);
    });
}

/// Subdomain decompositions partition the elements, and their
/// adjacency is exactly node-sharing.
#[test]
fn subdomains_partition_and_adjacency_correct() {
    let gen = (arb_spec(), usize_range(2, 16));
    check(
        "subdomains_partition_and_adjacency_correct",
        PropConfig::cases(8),
        &gen,
        |(spec, n_sub)| {
            let airway = generate_airway(spec).unwrap();
            let mesh = &airway.mesh;
            let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
            let weights = mesh.cost_weights();
            let d = decompose_subdomains(mesh, &elems, &weights, *n_sub);
            // Partition property.
            let mut seen = vec![false; elems.len()];
            for m in &d.members {
                for &e in m {
                    assert!(!seen[e as usize], "element {e} in two subdomains");
                    seen[e as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
            // Adjacency symmetric & irreflexive.
            for (s, neigh) in d.adjacency.iter().enumerate() {
                for &t in neigh {
                    assert!(t as usize != s);
                    assert!(d.adjacency[t as usize].contains(&(s as u32)));
                }
            }
        },
    );
}

/// The local element graph is symmetric and self-loop free.
#[test]
fn local_element_graph_is_symmetric() {
    check("local_element_graph_is_symmetric", PropConfig::cases(8), &arb_spec(), |spec| {
        let airway = generate_airway(spec).unwrap();
        let mesh = &airway.mesh;
        let elems: Vec<u32> = (0..(mesh.num_elements() / 2).max(1) as u32).collect();
        let weights = vec![1.0; elems.len()];
        let g = local_element_graph(mesh, &elems, &weights);
        for v in 0..g.num_vertices() {
            for &w in g.neighbors(v) {
                assert!(w as usize != v, "self loop at {v}");
                assert!(
                    g.neighbors(w as usize).contains(&(v as u32)),
                    "asymmetric edge {v}->{w}"
                );
            }
        }
    });
}
