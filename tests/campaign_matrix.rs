//! Campaign-engine suite: property tests for the declarative DSL and
//! the matrix expander, the differential golden matrix (every campaign
//! cell digest-matches its single-run `cfpd golden` counterpart), the
//! concurrency-determinism contract (pool sizes 1/2/8 produce
//! byte-identical aggregate reports), and the flag-beats-env layout
//! precedence regression.
//!
//! The blessed aggregate report of `examples/campaigns/small.campaign`
//! lives at `tests/golden/campaign_small.golden`. Regenerate after an
//! *intended* physics change:
//! `CFPD_BLESS=1 cargo test -p cfpd-campaign --test campaign_matrix`

use cfpd_campaign::dsl::{self, RawDoc, RawPair, RawSection};
use cfpd_campaign::{expand, full_matrix_size, run_cells, CampaignSpec, CellMetrics};
use cfpd_core::{
    golden_config, resolve_layout, run_scenario, ExecutionMode, LayoutPlan, Scenario,
};
use cfpd_testkit::digest::digest_bytes;
use cfpd_testkit::prop::{check, usize_range, Gen, PropConfig};
use cfpd_testkit::rng::Rng;
use std::path::PathBuf;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel)
}

// ---------------------------------------------------------------------
// DSL properties (satellite: round-trip, rejection with line spans)
// ---------------------------------------------------------------------

/// Generator of structurally valid documents: sections from a fixed
/// name pool, per-section keys drawn without repetition, free-text
/// values. Shrinks by dropping the last section, then trailing pairs.
struct ArbDoc;

const SECTION_POOL: &[&str] = &["campaign", "scenario", "matrix", "exclude", "extras_1"];
const KEY_POOL: &[&str] = &["mode", "layout", "dlb", "seed", "steps", "name", "jobs", "k_9"];
const VALUE_POOL: &[&str] =
    &["sync", "coupled:1+1", "off, on", "1e-6", "free text with spaces", "42", "a, b, c"];

impl Gen for ArbDoc {
    type Value = RawDoc;

    fn generate(&self, rng: &mut Rng) -> RawDoc {
        let n_sections = rng.range_usize(1, 5);
        let mut sections = Vec::new();
        for _ in 0..n_sections {
            let name = SECTION_POOL[rng.range_usize(0, SECTION_POOL.len())].to_string();
            // Draw a subset of the key pool (keys unique per section —
            // a duplicate would not be a valid document).
            let mut pairs = Vec::new();
            for key in KEY_POOL {
                if rng.range_usize(0, 3) == 0 {
                    pairs.push(RawPair {
                        key: key.to_string(),
                        value: VALUE_POOL[rng.range_usize(0, VALUE_POOL.len())].to_string(),
                        line: 0,
                    });
                }
            }
            sections.push(RawSection { name, line: 0, pairs });
        }
        RawDoc { sections }
    }

    fn shrink(&self, value: &RawDoc) -> Vec<RawDoc> {
        let mut out = Vec::new();
        if value.sections.len() > 1 {
            let mut d = value.clone();
            d.sections.pop();
            out.push(d);
        }
        for (i, s) in value.sections.iter().enumerate() {
            if !s.pairs.is_empty() {
                let mut d = value.clone();
                d.sections[i].pairs.pop();
                out.push(d);
            }
        }
        out
    }
}

/// parse(render(doc)) is the identity on structure, and render is a
/// fixpoint: rendering the reparse reproduces the exact same text.
#[test]
fn prop_dsl_render_parse_round_trips() {
    check("dsl round-trip", PropConfig::cases(200), &ArbDoc, |doc| {
        let text = dsl::render(doc);
        let reparsed = dsl::parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert!(
            dsl::structurally_equal(doc, &reparsed),
            "round-trip changed structure:\n{text}"
        );
        assert_eq!(dsl::render(&reparsed), text, "render is not a fixpoint");
    });
}

/// Duplicating any pair of a valid document right below itself makes
/// parsing fail *at the inserted line*, and the error names the
/// original line.
#[test]
fn prop_dsl_duplicate_key_errors_are_line_accurate() {
    let gen = (ArbDoc, usize_range(0, 1 << 16));
    check("duplicate-key rejection", PropConfig::cases(200), &gen, |(doc, pick)| {
        let text = dsl::render(doc);
        // Line numbers of every pair, as the parser assigns them.
        let parsed = dsl::parse(&text).unwrap();
        let pair_lines: Vec<usize> = parsed
            .sections
            .iter()
            .flat_map(|s| s.pairs.iter().map(|p| p.line))
            .collect();
        if pair_lines.is_empty() {
            return; // nothing to duplicate in this document
        }
        let target = pair_lines[pick % pair_lines.len()];
        let mut lines: Vec<&str> = text.lines().collect();
        let dup = lines[target - 1];
        lines.insert(target, dup); // duplicate immediately below itself
        let err = dsl::parse(&lines.join("\n"))
            .expect_err("duplicate key must be rejected");
        assert_eq!(err.line, target + 1, "error should anchor to the duplicate: {err}");
        assert!(
            err.message.contains(&format!("first defined at line {target}")),
            "error should name the original line: {err}"
        );
    });
}

/// Injecting one malformed line anywhere into a valid document fails
/// parsing at exactly that line.
#[test]
fn prop_dsl_malformed_lines_fail_at_their_line() {
    const MALFORMED: &[&str] = &["[unterminated", "no equals sign here", "9bad = 1", "[B@d]"];
    let gen = (ArbDoc, usize_range(0, MALFORMED.len()), usize_range(0, 1 << 16));
    check("malformed-line rejection", PropConfig::cases(200), &gen, |(doc, bad, pos)| {
        let text = dsl::render(doc);
        let mut lines: Vec<&str> = text.lines().collect();
        let at = pos % (lines.len() + 1);
        lines.insert(at, MALFORMED[*bad]);
        let err = dsl::parse(&lines.join("\n")).expect_err("malformed line must be rejected");
        assert_eq!(err.line, at + 1, "error should anchor to the bad line: {err}");
    });
}

// ---------------------------------------------------------------------
// Expander property (satellite: count = axis product minus excludes)
// ---------------------------------------------------------------------

/// Generator of random campaign documents with numeric axes and
/// exclude groups; the value is the document text (readable in
/// counterexample reports).
struct ArbCampaign;

impl Gen for ArbCampaign {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        const AXIS_KEYS: &[&str] = &["seed", "steps", "particles", "subdomains"];
        let n_axes = rng.range_usize(1, AXIS_KEYS.len() + 1);
        let mut text = String::from("[campaign]\nname = prop\n\n[matrix]\n");
        let mut axes: Vec<(&str, Vec<String>)> = Vec::new();
        for key in &AXIS_KEYS[..n_axes] {
            let n_values = rng.range_usize(1, 5);
            // Distinct numeric values; every axis key accepts positive
            // integers, so offset by 1 to keep steps >= 1.
            // i+1 is below 10 and the offset is a multiple of 10, so
            // every value is distinct (axes reject duplicate values).
            let values: Vec<String> = (0..n_values)
                .map(|i| (i as u64 + 1 + rng.bounded_u64(3) * 10).to_string())
                .collect();
            text.push_str(&format!("{key} = {}\n", values.join(", ")));
            axes.push((key, values));
        }
        for _ in 0..rng.range_usize(0, 3) {
            text.push_str("\n[exclude]\n");
            // A nonempty subset of axes, one declared value each.
            let first = rng.range_usize(0, axes.len());
            for (i, (key, values)) in axes.iter().enumerate() {
                if i == first || rng.range_usize(0, 2) == 0 {
                    let v = &values[rng.range_usize(0, values.len())];
                    text.push_str(&format!("{key} = {v}\n"));
                }
            }
        }
        text
    }
}

/// Expansion size equals the brute-force count: cross-product of the
/// axes minus the cells matched by any exclude group. Cell ids are
/// unique and indexed in expansion order.
#[test]
fn prop_expansion_count_is_product_minus_excludes() {
    check("expansion count", PropConfig::cases(150), &ArbCampaign, |text| {
        let spec = CampaignSpec::from_text(text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        let cells = expand(&spec).expect("validated spec expands");

        // Independent oracle: enumerate every index tuple and apply the
        // exclusion semantics directly.
        let total = full_matrix_size(&spec);
        let mut expected = 0usize;
        let mut odo = vec![0usize; spec.axes.len()];
        for _ in 0..total {
            let assignment: Vec<(&str, &str)> = spec
                .axes
                .iter()
                .zip(&odo)
                .map(|(a, &i)| (a.key.as_str(), a.values[i].as_str()))
                .collect();
            let dropped = spec.excludes.iter().any(|group| {
                group.iter().all(|c| {
                    assignment.iter().any(|(k, v)| *k == c.key && *v == c.value)
                })
            });
            if !dropped {
                expected += 1;
            }
            for d in (0..odo.len()).rev() {
                odo[d] += 1;
                if odo[d] < spec.axes[d].values.len() {
                    break;
                }
                odo[d] = 0;
            }
        }
        assert_eq!(cells.len(), expected, "expansion count mismatch for:\n{text}");
        assert!(cells.len() <= total);

        let mut ids: Vec<&str> = cells.iter().map(|c| c.id.as_str()).collect();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i, "cells must be indexed in expansion order");
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cells.len(), "cell ids must be unique:\n{text}");
    });
}

// ---------------------------------------------------------------------
// Differential golden matrix + blessed campaign report
// ---------------------------------------------------------------------

fn metrics_of<'a>(cells: &'a [Result<CellMetrics, cfpd_campaign::CellFailure>], id: &str) -> &'a CellMetrics {
    cells
        .iter()
        .filter_map(|c| c.as_ref().ok())
        .find(|m| m.id == id)
        .unwrap_or_else(|| panic!("no cell {id:?}"))
}

fn assert_matches_golden(actual: &str, path: &PathBuf) {
    if std::env::var_os("CFPD_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); run with CFPD_BLESS=1", path.display())
    });
    assert_eq!(actual, expected, "campaign report drifted from {}", path.display());
}

/// The tentpole gate, one matrix run asserting four things:
///
/// 1. **Differential vs the checked-in single-run goldens**: the
///    (sync, default) and (sync, opt) cells' physics digests equal the
///    FNV-1a digests of `tests/golden/sync_small*.golden` byte-for-byte
///    — a campaign cell *is* a `cfpd golden` run.
/// 2. **Differential vs an independent construction**: the coupled
///    cells match a `run_scenario` invocation built by hand from
///    `golden_config()`, bypassing the DSL entirely.
/// 3. **DLB invisibility**: every `dlb=on` cell digest-matches its
///    `dlb=off` sibling (load balancing must not move physics bits).
/// 4. **Opt-layout tolerance**: opt and default layouts agree exactly
///    on particle censuses and deposition fractions; their field
///    digests legitimately differ (documented in DESIGN.md §12).
///
/// Finally the aggregate canonical JSON must equal the blessed
/// `tests/golden/campaign_small.golden`.
#[test]
fn differential_golden_matrix_pins_the_full_small_campaign() {
    let text = std::fs::read_to_string(repo_path("examples/campaigns/small.campaign")).unwrap();
    let spec = CampaignSpec::from_text(&text).unwrap();
    let cells = expand(&spec).unwrap();
    assert_eq!(cells.len(), 8, "small.campaign is the full 2x2x2 matrix");

    let report = run_cells(&spec.name, &cells, 4);
    assert_eq!(report.failures(), 0);

    // 1. The sync cells against the checked-in single-run goldens.
    for (id, golden) in [
        ("mode=sync,layout=default,dlb=off", "tests/golden/sync_small.golden"),
        ("mode=sync,layout=opt,dlb=off", "tests/golden/sync_small_opt.golden"),
    ] {
        let file = std::fs::read(repo_path(golden)).unwrap();
        assert_eq!(
            metrics_of(&report.cells, id).digest,
            digest_bytes(&file),
            "campaign cell {id} diverged from checked-in {golden}"
        );
    }

    // 2. The coupled cells against a hand-built scenario that never
    //    touches the DSL or the expander.
    for (layout, id) in [
        (LayoutPlan::disabled(), "mode=coupled:1+1,layout=default,dlb=off"),
        (LayoutPlan::optimized(), "mode=coupled:1+1,layout=opt,dlb=off"),
    ] {
        let mut cfg = golden_config();
        cfg.mode = ExecutionMode::Coupled { fluid: 1, particles: 1 };
        cfg.layout = layout;
        let independent = run_scenario(&Scenario::deterministic(cfg, 2));
        assert_eq!(
            metrics_of(&report.cells, id).digest,
            independent.digest,
            "campaign cell {id} diverged from its independent single run"
        );
    }

    // 3. DLB never moves physics bits: on/off siblings digest-match.
    for m in report.cells.iter().filter_map(|c| c.as_ref().ok()) {
        if m.id.ends_with("dlb=on") {
            let sibling = m.id.replace("dlb=on", "dlb=off");
            assert_eq!(
                m.digest,
                metrics_of(&report.cells, &sibling).digest,
                "dlb=on changed the physics of {sibling}"
            );
        }
    }

    // 4. Opt vs default layout: censuses and deposition fractions are
    //    bit-identical; the sync field digests provably differ (the two
    //    checked-in goldens are distinct files).
    for mode in ["sync", "coupled:1+1"] {
        let d = metrics_of(&report.cells, &format!("mode={mode},layout=default,dlb=off"));
        let o = metrics_of(&report.cells, &format!("mode={mode},layout=opt,dlb=off"));
        assert_eq!(d.census, o.census, "layout=opt moved the {mode} particle census");
        assert_eq!(
            d.deposited_frac_bits, o.deposited_frac_bits,
            "layout=opt moved the {mode} deposition fraction"
        );
    }
    let sync_default = metrics_of(&report.cells, "mode=sync,layout=default,dlb=off");
    let sync_opt = metrics_of(&report.cells, "mode=sync,layout=opt,dlb=off");
    assert_ne!(
        sync_default.digest, sync_opt.digest,
        "the opt layout is supposed to reorder fields (distinct goldens)"
    );

    // The blessed N-cell golden: the canonical aggregate report.
    assert_matches_golden(&report.render_json(), &repo_path("tests/golden/campaign_small.golden"));
}

// ---------------------------------------------------------------------
// Concurrency determinism (satellite: pool sizes 1, 2, 8)
// ---------------------------------------------------------------------

/// The canonical report is a pure function of the campaign document:
/// worker-pool size must not leak into a single byte of it.
#[test]
fn aggregate_reports_are_byte_identical_across_pool_sizes() {
    const DOC: &str = "\
[campaign]
name = pools

[scenario]
ranks = 2
generations = 1
particles = 40
steps = 1

[matrix]
mode = sync, coupled:1+1
dlb = off, on
";
    let spec = CampaignSpec::from_text(DOC).unwrap();
    let cells = expand(&spec).unwrap();
    let reports: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&jobs| run_cells(&spec.name, &cells, jobs))
        .collect();
    for r in &reports {
        assert_eq!(r.failures(), 0);
    }
    let canonical = reports[0].render_json();
    assert!(!canonical.is_empty());
    for (r, jobs) in reports.iter().zip([1, 2, 8]).skip(1) {
        assert_eq!(r.render_json(), canonical, "pool size {jobs} changed the JSON report");
        assert_eq!(
            r.render_table(),
            reports[0].render_table(),
            "pool size {jobs} changed the table"
        );
    }
}

// ---------------------------------------------------------------------
// Layout precedence (satellite: flag beats CFPD_LAYOUT, one helper)
// ---------------------------------------------------------------------

/// `--layout` / the DSL `layout =` key and `CFPD_LAYOUT` are resolved
/// by the single `cfpd_core::resolve_layout` helper, flag beats env.
/// This test is the only one in the binary that mutates the variable.
#[test]
fn explicit_layout_beats_cfpd_layout_env() {
    // In-process: the helper itself, and the DSL key going through it.
    std::env::set_var("CFPD_LAYOUT", "opt");
    assert_eq!(resolve_layout(Some("default")).unwrap(), LayoutPlan::disabled());
    assert_eq!(resolve_layout(Some("opt")).unwrap(), LayoutPlan::optimized());
    assert_eq!(resolve_layout(None).unwrap(), LayoutPlan::optimized());

    let spec = CampaignSpec::from_text(
        "[campaign]\nname = env\n\n[scenario]\nlayout = default\n",
    )
    .unwrap();
    let cells = expand(&spec).unwrap();
    assert_eq!(
        cells[0].scenario.config.layout,
        LayoutPlan::disabled(),
        "DSL layout key must beat CFPD_LAYOUT"
    );
    std::env::remove_var("CFPD_LAYOUT");
    assert_eq!(resolve_layout(None).unwrap(), LayoutPlan::disabled());

    // End to end: `cfpd golden --layout default` under CFPD_LAYOUT=opt
    // must produce the *default* golden document.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cfpd"))
        .args(["golden", "--ranks", "2", "--layout", "default"])
        .env("CFPD_LAYOUT", "opt")
        .output()
        .expect("spawn cfpd");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let expected = std::fs::read(repo_path("tests/golden/sync_small.golden")).unwrap();
    assert_eq!(
        out.stdout, expected,
        "--layout default must beat CFPD_LAYOUT=opt end to end"
    );
}

// ---------------------------------------------------------------------
// CLI exit codes (satellite: nonzero exit on injected regression)
// ---------------------------------------------------------------------

/// `cfpd campaign report` exits 0 against a pristine baseline and 1
/// against a baseline with an injected digest delta.
#[test]
fn campaign_report_exits_nonzero_on_injected_regression() {
    let campaign = repo_path("examples/campaigns/tiny.campaign");
    let campaign = campaign.to_str().unwrap();

    // Produce the pristine baseline with `campaign run --json`.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cfpd"))
        .args(["campaign", "run", campaign, "--json"])
        .output()
        .expect("spawn cfpd");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let pristine = String::from_utf8(out.stdout).unwrap();
    assert!(pristine.contains("\"campaign\":\"tiny\""), "{pristine}");

    let dir = std::env::temp_dir();
    let base = dir.join(format!("cfpd-campaign-base-{}.json", std::process::id()));
    let tampered = dir.join(format!("cfpd-campaign-tampered-{}.json", std::process::id()));
    std::fs::write(&base, &pristine).unwrap();

    // Inject a regression: flip the first digest in the baseline.
    let needle = "\"digest\":\"";
    let at = pristine.find(needle).expect("report carries digests") + needle.len();
    let mut bytes = pristine.into_bytes();
    bytes[at] = if bytes[at] == b'0' { b'1' } else { b'0' };
    std::fs::write(&tampered, &bytes).unwrap();

    let report = |baseline: &std::path::Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_cfpd"))
            .args(["campaign", "report", campaign, "--baseline", baseline.to_str().unwrap()])
            .output()
            .expect("spawn cfpd")
    };
    let clean = report(&base);
    let dirty = report(&tampered);
    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&tampered).ok();

    assert_eq!(clean.status.code(), Some(0), "{}", String::from_utf8_lossy(&clean.stderr));
    assert!(String::from_utf8_lossy(&clean.stdout).contains("zero regressions"));
    assert_eq!(dirty.status.code(), Some(1), "injected delta must fail the gate");
    assert!(String::from_utf8_lossy(&dirty.stdout).contains("regression(s)"));
}
