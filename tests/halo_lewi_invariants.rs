//! Invariant tests for the two machineries that move state between
//! ranks: the halo exchange (send/recv symmetry across the whole
//! communicator) and LeWI lending (core-count conservation under
//! arbitrary lend/reclaim scripts).

use cfpd_core::halo::HaloMap;
use cfpd_dlb::{DlbNode, GrantPolicy, LendPolicy};
use cfpd_mesh::{generate_airway, AirwaySpec};
use cfpd_partition::{partition_kway, Graph};
use cfpd_runtime::ThreadPool;
use cfpd_simmpi::Universe;
use cfpd_testkit::rng::Rng;
use std::sync::Arc;

fn partitioned_airway(parts: usize) -> (Arc<cfpd_mesh::AirwayMesh>, Arc<Vec<u32>>) {
    let am = generate_airway(&AirwaySpec::small()).unwrap();
    let n2e = am.mesh.node_to_elements();
    let adj = am.mesh.element_adjacency(&n2e);
    let g = Graph::from_csr_unit(&adj);
    let part = partition_kway(&g, parts, 3);
    (Arc::new(am), Arc::new(part.parts))
}

/// Halo symmetry: whatever rank `a` sends to rank `b` is exactly what
/// rank `b` expects to receive from rank `a` — the same global node
/// ids, in the same order. A violation would silently scramble ghost
/// values in every halo exchange.
#[test]
fn halo_send_recv_lists_are_symmetric() {
    const RANKS: usize = 3;
    let (am, owner) = partitioned_airway(RANKS);
    let am2 = Arc::clone(&am);
    let ow2 = Arc::clone(&owner);
    let results = Universe::run(RANKS, move |comm| {
        let halo = HaloMap::build(&am2.mesh, &ow2, &comm);
        (halo.send_globals(), halo.recv_globals())
    });

    let find = |lists: &[(usize, Vec<u32>)], peer: usize| -> Option<Vec<u32>> {
        lists.iter().find(|(r, _)| *r == peer).map(|(_, g)| g.clone())
    };
    let mut checked_pairs = 0usize;
    for a in 0..RANKS {
        for b in 0..RANKS {
            if a == b {
                continue;
            }
            let a_sends = find(&results[a].0, b);
            let b_recvs = find(&results[b].1, a);
            assert_eq!(
                a_sends, b_recvs,
                "rank {a} -> {b}: send list and peer recv list disagree"
            );
            if a_sends.is_some() {
                checked_pairs += 1;
            }
        }
    }
    // A 3-way partition of a connected mesh must actually have halos.
    assert!(checked_pairs >= 2, "no halo traffic to verify");

    // Each send list consists of nodes the sender owns; each recv list
    // of nodes the receiver ghosts.
    let am3 = Arc::clone(&am);
    let ow3 = Arc::clone(&owner);
    Universe::run(RANKS, move |comm| {
        let halo = HaloMap::build(&am3.mesh, &ow3, &comm);
        let owned: std::collections::HashSet<u32> = halo.owned.iter().copied().collect();
        let ghosts: std::collections::HashSet<u32> = halo.ghosts.iter().copied().collect();
        for (peer, globals) in halo.send_globals() {
            assert_ne!(peer, comm.rank());
            assert!(globals.iter().all(|g| owned.contains(g)), "sending non-owned node");
        }
        for (peer, globals) in halo.recv_globals() {
            assert_ne!(peer, comm.rank());
            assert!(globals.iter().all(|g| ghosts.contains(g)), "receiving non-ghost node");
        }
    });
}

/// LeWI conservation under a randomized lend/reclaim script:
/// * no rank's pool ever drops below one active executor,
/// * a blocked rank runs exactly one executor (KeepOne),
/// * an unblocked rank runs at least its owned cores,
/// * the node never runs more cores than are owned in total
///   (lending moves cores, it never mints them),
/// * reclaiming everything restores exact ownership, and the
///   lend/reclaim transition counts match.
#[test]
fn lewi_lending_conserves_cores() {
    const OWNED: [usize; 4] = [3, 2, 2, 1];
    let total_owned: usize = OWNED.iter().sum();
    let node = DlbNode::with_policies(LendPolicy::KeepOne, GrantPolicy::Even);
    for (rank, &owned) in OWNED.iter().enumerate() {
        node.register(rank, Arc::new(ThreadPool::new(total_owned)), owned);
    }

    let mut rng = Rng::new(0xD1B);
    let mut blocked = [false; OWNED.len()];
    for _op in 0..200 {
        let rank = rng.range_usize(0, OWNED.len());
        if rng.f64() < 0.5 {
            node.lend(rank);
            blocked[rank] = true;
        } else {
            node.reclaim(rank);
            blocked[rank] = false;
        }

        let mut total_active = 0usize;
        for (r, &owned) in OWNED.iter().enumerate() {
            let active = node.active_of(r).expect("registered rank");
            assert!(active >= 1, "rank {r} starved to {active}");
            if blocked[r] {
                assert_eq!(active, 1, "blocked rank {r} must keep exactly one core");
            } else {
                assert!(active >= owned, "unblocked rank {r}: {active} < owned {owned}");
            }
            total_active += active;
        }
        assert!(
            total_active <= total_owned,
            "cores minted: {total_active} active > {total_owned} owned"
        );
    }

    // Full reclaim restores exact ownership everywhere.
    for rank in 0..OWNED.len() {
        node.reclaim(rank);
    }
    for (rank, &owned) in OWNED.iter().enumerate() {
        assert_eq!(node.active_of(rank), Some(owned), "rank {rank} not restored");
    }
    let stats = node.stats();
    assert_eq!(stats.lends, stats.reclaims, "unbalanced transitions: {stats:?}");
}

/// The same conservation bound holds under LendAll + Neediest — the
/// aggressive corner of the policy space.
#[test]
fn lewi_lend_all_neediest_conserves_cores() {
    const OWNED: [usize; 3] = [4, 2, 1];
    let total_owned: usize = OWNED.iter().sum();
    let node = DlbNode::with_policies(LendPolicy::LendAll, GrantPolicy::Neediest);
    for (rank, &owned) in OWNED.iter().enumerate() {
        node.register(rank, Arc::new(ThreadPool::new(total_owned)), owned);
    }
    let mut rng = Rng::new(0xA11);
    let mut blocked = [false; OWNED.len()];
    for _op in 0..120 {
        let rank = rng.range_usize(0, OWNED.len());
        if rng.f64() < 0.5 {
            node.lend(rank);
            blocked[rank] = true;
        } else {
            node.reclaim(rank);
            blocked[rank] = false;
        }
        let total_active: usize =
            (0..OWNED.len()).map(|r| node.active_of(r).unwrap()).sum();
        // LendAll keeps the blocked pool at its floor of one executor,
        // so the conservative bound gains one core per blocked rank.
        let slack = blocked.iter().filter(|&&b| b).count();
        assert!(total_active <= total_owned + slack, "{total_active} > {total_owned}+{slack}");
    }
    for rank in 0..OWNED.len() {
        node.reclaim(rank);
    }
    for (rank, &owned) in OWNED.iter().enumerate() {
        assert_eq!(node.active_of(rank), Some(owned));
    }
}
