//! Telemetry subsystem acceptance gates.
//!
//! The online POP rollup maintained by `cfpd-telemetry` during a run
//! must agree with the post-hoc analysis `cfpd-trace` performs on the
//! very same run to within 1e-9 — both sides consume identical `(start,
//! end)` pairs, so any drift means the mirroring in
//! `cfpd_core::simulation` broke. And enabling telemetry must be
//! invisible in the golden document: summaries go to stderr, never into
//! the trace.
//!
//! Telemetry state is process-global, so every test here serializes on
//! one mutex and ends with telemetry disabled and reset.

use std::sync::Mutex;

use cfpd_core::{golden_config, golden_trace, run_simulation};
use cfpd_telemetry::pop;

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

const TOL: f64 = 1e-9;
const RANKS: usize = 2;

fn with_telemetry_run<R>(f: impl FnOnce(&cfpd_core::SimulationResult) -> R) -> R {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cfpd_telemetry::set_enabled(true);
    cfpd_telemetry::reset();
    let r = run_simulation(&golden_config(), RANKS, 1, false);
    cfpd_telemetry::set_enabled(false);
    let out = f(&r);
    cfpd_telemetry::reset();
    out
}

#[test]
fn pop_rollup_agrees_with_trace_stats_to_1e_9() {
    with_telemetry_run(|r| {
        let report = pop::report().expect("telemetry observed at least one phase");
        assert_eq!(report.ranks, RANKS);
        assert_eq!(report.dropped, 0, "no span may fall off the rank table");

        let ts = cfpd_trace::trace_stats(&r.trace);
        let mut useful = vec![0.0f64; r.trace.num_ranks.max(1)];
        for e in &r.trace.events {
            if e.phase != cfpd_trace::Phase::MpiComm {
                useful[e.rank] += e.duration();
            }
        }
        let lb = cfpd_trace::load_balance(&useful);
        let max_useful = useful.iter().cloned().fold(0.0f64, f64::max);
        let comm_e = if ts.wall_time > 0.0 && max_useful > 0.0 {
            max_useful / ts.wall_time
        } else {
            1.0
        };

        assert!(
            (report.wall_time - ts.wall_time).abs() <= TOL,
            "wall time: telemetry {} vs trace {}",
            report.wall_time,
            ts.wall_time
        );
        assert!(
            (report.useful_time - ts.useful_time).abs() <= TOL,
            "useful time: telemetry {} vs trace {}",
            report.useful_time,
            ts.useful_time
        );
        assert!(
            (report.mpi_time - ts.mpi_time).abs() <= TOL,
            "mpi time: telemetry {} vs trace {}",
            report.mpi_time,
            ts.mpi_time
        );
        assert!(
            (report.parallel_efficiency - ts.parallel_efficiency).abs() <= TOL,
            "parallel efficiency: telemetry {} vs trace {}",
            report.parallel_efficiency,
            ts.parallel_efficiency
        );
        assert!(
            (report.load_balance - lb).abs() <= TOL,
            "load balance: telemetry {} vs trace {}",
            report.load_balance,
            lb
        );
        assert!(
            (report.comm_efficiency - comm_e).abs() <= TOL,
            "comm efficiency: telemetry {} vs trace {}",
            report.comm_efficiency,
            comm_e
        );
        for (rank, (tel, tr)) in report.per_rank_useful.iter().zip(&useful).enumerate() {
            assert!(
                (tel - tr).abs() <= TOL,
                "rank {rank} useful: telemetry {tel} vs trace {tr}"
            );
        }
    });
}

#[test]
fn pop_identity_holds_in_the_rollup() {
    with_telemetry_run(|_| {
        let report = pop::report().expect("report available");
        let recomposed = report.load_balance * report.comm_efficiency;
        assert!(
            (report.parallel_efficiency - recomposed).abs() <= TOL,
            "PE {} != LB x CommE {}",
            report.parallel_efficiency,
            recomposed
        );
        assert!(report.parallel_efficiency > 0.0 && report.parallel_efficiency <= 1.0 + TOL);
        assert!(report.load_balance > 0.0 && report.load_balance <= 1.0 + TOL);
    });
}

#[test]
fn counters_reflect_the_run_shape() {
    let cfg = golden_config();
    with_telemetry_run(|r| {
        let snap = cfpd_telemetry::snapshot();
        let counter = |name: &str| -> u64 {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
        };
        assert_eq!(counter("core.rank_steps") as usize, RANKS * cfg.steps);
        assert!(counter("solver.cg_iterations") > 0, "CG ran");
        assert!(counter("solver.assemblies") > 0, "assembly ran");
        assert!(counter("solver.spmv_calls") > 0, "spmv ran");
        assert_eq!(counter("particles.steps") as usize, RANKS * cfg.steps);
        assert!(counter("mpi.msgs_sent") > 0, "ranks exchanged messages");
        // Metrics register lazily at first use, so a clean run leaves
        // the timeout counter absent entirely — absent or zero both
        // mean "no timeouts".
        let timeouts = snap
            .counters
            .iter()
            .find(|(n, _)| n == "mpi.timeouts")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(timeouts, 0, "clean run has no timeouts");
        // The run result and the counters describe the same universe.
        let c = r.census;
        assert!(c.active + c.deposited + c.escaped + c.lost > 0);
        assert!(snap.pop.is_some(), "snapshot carries the POP rollup");
    });
}

#[test]
fn snapshot_renders_to_both_surfaces() {
    with_telemetry_run(|_| {
        let snap = cfpd_telemetry::snapshot();
        let table = snap.render_table();
        assert!(table.contains("== telemetry =="));
        assert!(table.contains("parallel_efficiency"));
        let json = snap.render_json();
        for key in [
            "\"parallel_efficiency\"",
            "\"load_balance\"",
            "\"comm_efficiency\"",
            "\"counters\"",
            "\"histograms\"",
        ] {
            assert!(json.contains(key), "JSON missing {key}: {json}");
        }
    });
}

/// Telemetry must be invisible on stdout: the golden document rendered
/// with telemetry enabled is byte-identical to the one rendered with it
/// disabled (summaries are the CLI's job and go to stderr).
#[test]
fn enabling_telemetry_keeps_the_golden_document_byte_identical() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cfpd_telemetry::set_enabled(false);
    cfpd_telemetry::reset();
    let off = golden_trace(&golden_config(), RANKS);
    cfpd_telemetry::set_enabled(true);
    cfpd_telemetry::reset();
    let on = golden_trace(&golden_config(), RANKS);
    cfpd_telemetry::set_enabled(false);
    cfpd_telemetry::reset();
    assert_eq!(on, off, "telemetry perturbed the golden document");
}
