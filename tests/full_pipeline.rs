//! Cross-crate integration tests: the full CFPD simulation across
//! execution modes, strategies, rank counts and DLB settings.

use cfpd_core::{run_simulation, ExecutionMode, SimulationConfig};
use cfpd_mesh::AirwaySpec;
use cfpd_solver::AssemblyStrategy;
use cfpd_trace::Phase;

fn tiny() -> SimulationConfig {
    SimulationConfig {
        airway: AirwaySpec { generations: 1, ..AirwaySpec::small() },
        num_particles: 80,
        steps: 2,
        solver_tol: 1e-5,
        solver_max_iters: 300,
        ..Default::default()
    }
}

fn total(census: &cfpd_particles::ParticleCensus) -> usize {
    census.active + census.deposited + census.escaped + census.lost
}

#[test]
fn every_strategy_runs_the_full_simulation() {
    for strategy in AssemblyStrategy::ALL {
        let cfg = SimulationConfig { strategy, ..tiny() };
        let r = run_simulation(&cfg, 2, 1, false);
        assert!(r.total_time > 0.0, "{strategy:?}");
        assert!(total(&r.census) > 0, "{strategy:?}");
        assert_eq!(r.census.lost, 0, "{strategy:?} lost particles");
    }
}

#[test]
fn rank_count_does_not_change_particle_fate_totals() {
    let cfg = tiny();
    let counts: Vec<usize> = [1usize, 2, 4]
        .iter()
        .map(|&n| total(&run_simulation(&cfg, n, 1, false).census))
        .collect();
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}

#[test]
fn sync_and_coupled_agree_on_injection_totals() {
    let sync_cfg = tiny();
    let sync = run_simulation(&sync_cfg, 2, 1, false);
    let coupled_cfg = SimulationConfig {
        mode: ExecutionMode::Coupled { fluid: 2, particles: 2 },
        ..tiny()
    };
    let coupled = run_simulation(&coupled_cfg, 0, 1, false);
    assert_eq!(total(&sync.census), total(&coupled.census));
}

#[test]
fn dlb_does_not_change_the_physics() {
    let cfg = tiny();
    let off = run_simulation(&cfg, 2, 2, false);
    let on = run_simulation(&cfg, 2, 2, true);
    // Same particle outcomes (deterministic injection + same numerics).
    assert_eq!(off.census, on.census);
    assert!(on.dlb.unwrap().lends > 0);
}

#[test]
fn trace_covers_all_fluid_phases_on_all_ranks() {
    let r = run_simulation(&tiny(), 3, 1, false);
    for phase in [Phase::Assembly, Phase::Solver1, Phase::Solver2, Phase::Sgs] {
        let times = r.trace.per_rank_time(phase);
        assert_eq!(times.len(), 3);
        assert!(times.iter().all(|&t| t > 0.0), "{phase:?} missing on some rank");
    }
    // Percentages sum to ~100.
    let pct: f64 = r.breakdown.iter().map(|b| b.pct_time).sum();
    assert!((pct - 100.0).abs() < 1e-6);
}

#[test]
fn coupled_mode_split_sizes_respected() {
    let cfg = SimulationConfig {
        mode: ExecutionMode::Coupled { fluid: 3, particles: 2 },
        ..tiny()
    };
    let r = run_simulation(&cfg, 0, 1, false);
    let asm = r.trace.per_rank_time(Phase::Assembly);
    let par = r.trace.per_rank_time(Phase::Particles);
    assert_eq!(asm.len(), 5);
    assert!(asm[..3].iter().all(|&t| t > 0.0), "fluid ranks assemble");
    assert!(asm[3..].iter().all(|&t| t == 0.0), "particle ranks do not");
    assert!(par[3..].iter().any(|&t| t > 0.0), "particle ranks track particles");
}

#[test]
fn more_particles_increase_particle_phase_share() {
    // Wall-clock comparisons need care when the suite's test threads
    // contend for cores: the *percentage* share is a ratio of two noisy
    // sums, and with 2 ranks the particle phase is dominated by fixed
    // migration-wait poll slices that drown the 10x-work signal. So:
    // single rank (no migration waits), absolute phase time (carries
    // the full signal), medians over interleaved reps.
    let time = |r: &cfpd_core::SimulationResult| {
        r.breakdown
            .iter()
            .find(|b| b.phase == Phase::Particles)
            .map_or(0.0, |b| b.max_time)
    };
    let big_cfg = SimulationConfig { num_particles: 800, ..tiny() };
    let mut small_times = Vec::new();
    let mut big_times = Vec::new();
    for _ in 0..5 {
        small_times.push(time(&run_simulation(&tiny(), 1, 1, false)));
        big_times.push(time(&run_simulation(&big_cfg, 1, 1, false)));
    }
    small_times.sort_by(f64::total_cmp);
    big_times.sort_by(f64::total_cmp);
    assert!(
        big_times[2] > small_times[2],
        "10x particles must grow the particle-phase time: {big_times:?} vs {small_times:?}"
    );
}
