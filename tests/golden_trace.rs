//! Golden-trace regression suite: the canonical small run, serialized
//! as a wall-clock-free event trace with bit-pattern floats, must stay
//! byte-identical to the checked-in golden file — and identical across
//! repeated runs, both in-process and through the `cfpd golden` binary.
//!
//! Regenerate the golden after an *intended* physics change:
//! `CFPD_BLESS=1 cargo test -p cfpd-campaign --test golden_trace`

use cfpd_core::{golden_config, golden_trace, LayoutPlan};
use std::path::PathBuf;

const GOLDEN_RANKS: usize = 2;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/sync_small.golden")
}

fn opt_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/sync_small_opt.golden")
}

fn assert_matches_golden(actual: &str, path: &PathBuf) {
    if std::env::var_os("CFPD_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with CFPD_BLESS=1", path.display()));
    if actual != expected {
        // Locate the first diverging line for a readable failure.
        let mismatch = actual
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match mismatch {
            Some((i, (a, b))) => panic!(
                "golden trace diverges at line {}:\n  actual:   {a}\n  expected: {b}\n\
                 (CFPD_BLESS=1 to regenerate after an intended change)",
                i + 1
            ),
            None => panic!(
                "golden trace length changed: {} vs {} lines",
                actual.lines().count(),
                expected.lines().count()
            ),
        }
    }
}

/// The physics gate: any bit drift in assembly, solves, fields,
/// migration or deposition shows up as a diff against the golden file.
#[test]
fn trace_matches_checked_in_golden() {
    let actual = golden_trace(&golden_config(), GOLDEN_RANKS);
    assert_matches_golden(&actual, &golden_path());
}

/// The flight recorder is timing-only by contract: with the ring
/// buffer recording every phase transition and solver heartbeat, both
/// goldens must still match byte-for-byte. (Enabling is safe under
/// parallel tests — recording never feeds back into physics.)
#[test]
fn goldens_are_byte_identical_with_flight_recorder_on() {
    cfpd_flight::set_enabled(true);
    let actual = golden_trace(&golden_config(), GOLDEN_RANKS);
    assert_matches_golden(&actual, &golden_path());
    let mut cfg = golden_config();
    cfg.layout = LayoutPlan::optimized();
    let actual = golden_trace(&cfg, GOLDEN_RANKS);
    assert_matches_golden(&actual, &opt_golden_path());
    assert!(
        !cfpd_flight::events().is_empty(),
        "the recorder must actually have captured the run it observed"
    );
    cfpd_flight::set_enabled(false);
}

/// The locality-optimized path (RCM + batched assembly + fused CG) is
/// deterministic too and pinned by its own golden file — the default
/// golden above proves the optimization is invisible when disabled.
#[test]
fn opt_layout_trace_matches_its_own_golden() {
    let mut cfg = golden_config();
    cfg.layout = LayoutPlan::optimized();
    let actual = golden_trace(&cfg, GOLDEN_RANKS);
    assert!(
        actual.lines().nth(2).unwrap_or("").ends_with("layout=opt"),
        "opt trace must be marked in the run header"
    );
    assert_matches_golden(&actual, &opt_golden_path());
}

/// Determinism in-process: two runs in the same process produce
/// byte-identical traces.
#[test]
fn trace_is_reproducible_in_process() {
    let cfg = golden_config();
    let first = golden_trace(&cfg, GOLDEN_RANKS);
    let second = golden_trace(&cfg, GOLDEN_RANKS);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same-process runs diverged");
}

/// Determinism across processes: running the actual `cfpd` binary twice
/// yields byte-identical stdout.
#[test]
fn cfpd_golden_subcommand_is_byte_identical_across_runs() {
    let run = || {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_cfpd"))
            .args(["golden", "--ranks", "2"])
            .output()
            .expect("spawn cfpd");
        assert!(
            out.status.success(),
            "cfpd golden failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(first, second, "cfpd golden output differs between runs");
    // The binary serializes the same trace the library produces.
    let in_process = golden_trace(&golden_config(), GOLDEN_RANKS);
    assert_eq!(String::from_utf8(first).unwrap(), in_process);
}
