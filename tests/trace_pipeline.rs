//! Trace-pipeline acceptance gates.
//!
//! Exporter output on a canonical synthetic trace is pinned byte-for-
//! byte by golden files (`tests/golden/trace_small.*`, regenerate with
//! `CFPD_BLESS=1 cargo test -p cfpd-core --test trace_pipeline`); live
//! traced runs are checked for the structural invariants that make the
//! formats meaningful — non-overlapping per-worker intervals inside
//! [0, total_time], critical-path bounds, lost-cycles agreement with
//! the online POP rollup to 1e-9, and a zero structural delta between
//! identical-seed runs.
//!
//! Telemetry state is process-global; tests touching it serialize on
//! one mutex, mirroring `tests/telemetry_report.rs`.

use std::path::PathBuf;
use std::sync::Mutex;

use cfpd_core::{golden_config, run_simulation_opts, RunOptions, SimulationResult};
use cfpd_testkit::parse_json;
use cfpd_trace::{
    critical_path, diff_summaries, export_chrome, export_pcf, export_prv, export_row,
    export_summary, lost_cycles, ChaosKind, DlbMarkKind, Phase, Trace, WorkerState,
};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

const RANKS: usize = 2;
const TOL: f64 = 1e-9;

fn traced_run() -> SimulationResult {
    run_simulation_opts(
        &golden_config(),
        RANKS,
        1,
        &RunOptions { trace: true, ..Default::default() },
    )
}

/// The canonical small trace every exporter golden pins: two ranks, two
/// workers on rank 0, phase + worker + message + DLB + chaos records,
/// all with fixed timestamps.
fn synthetic_trace() -> Trace {
    let mut t = Trace::new(2);
    t.record(0, Phase::Assembly, 0.0, 0.1);
    t.record(0, Phase::Solver1, 0.1, 0.3);
    t.record(0, Phase::MpiComm, 0.3, 0.4);
    t.record(1, Phase::Assembly, 0.0, 0.2);
    t.record(1, Phase::Solver1, 0.2, 0.35);
    t.record(1, Phase::MpiComm, 0.35, 0.4);
    t.record_worker(0, 0, WorkerState::Assembly, 0.0, 0.1);
    t.record_worker(0, 0, WorkerState::Solver1, 0.1, 0.3);
    t.record_worker(0, 0, WorkerState::MpiWait, 0.3, 0.4);
    t.record_worker(0, 1, WorkerState::Useful, 0.05, 0.25);
    t.record_worker(1, 0, WorkerState::Assembly, 0.0, 0.2);
    t.record_worker(1, 0, WorkerState::Solver1, 0.2, 0.35);
    t.record_worker(1, 0, WorkerState::MpiWait, 0.35, 0.4);
    t.record_msg(0, 1, 7, 64, 0.30, 0.36);
    t.record_msg(1, 0, 7, 64, 0.35, 0.38);
    t.record_dlb(0, 0.31, DlbMarkKind::Lend, 1);
    t.record_dlb(0, 0.39, DlbMarkKind::Reclaim, 1);
    t.record_chaos(1, 0.2, ChaosKind::FaultInjected);
    t
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden").join(name)
}

fn assert_matches_golden(actual: &str, name: &str) {
    let path = golden_path(name);
    if std::env::var_os("CFPD_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); run with CFPD_BLESS=1", path.display())
    });
    assert_eq!(actual, expected, "{name} drifted (CFPD_BLESS=1 to regenerate)");
}

#[test]
fn exporters_match_checked_in_goldens() {
    let t = synthetic_trace();
    assert_matches_golden(&export_prv(&t), "trace_small.prv");
    assert_matches_golden(&export_pcf(), "trace_small.pcf");
    assert_matches_golden(&export_row(&t), "trace_small.row");
    assert_matches_golden(&export_chrome(&t), "trace_small.chrome.json");
    assert_matches_golden(&export_summary(&t), "trace_small.summary.json");
}

#[test]
fn json_exports_satisfy_the_in_repo_parser() {
    let t = synthetic_trace();
    let chrome = parse_json(&export_chrome(&t)).expect("chrome export is valid RFC 8259");
    let events = chrome
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let summary = parse_json(&export_summary(&t)).expect("summary export is valid RFC 8259");
    assert_eq!(summary.get("ranks").and_then(|v| v.as_u64()), Some(2));
    // Message tags survive the near-u64::MAX range losslessly because
    // the exporter writes them as strings.
    let msgs = summary.get("messages").and_then(|v| v.as_array()).expect("messages");
    assert!(msgs.iter().all(|m| m.get("tag").and_then(|v| v.as_str()).is_some()));
}

/// Live property: every worker interval of a traced run lies inside
/// [0, total_time] and no two intervals of one (rank, worker) lane
/// overlap.
#[test]
fn traced_run_worker_intervals_are_disjoint_and_bounded() {
    let r = traced_run();
    let tr = &r.trace;
    assert!(!tr.workers.is_empty(), "traced run records worker events");
    let wall = tr.total_time();
    let mut lanes = tr.workers.clone();
    lanes.sort_by(|a, b| {
        (a.rank, a.worker)
            .cmp(&(b.rank, b.worker))
            .then(a.t_start.total_cmp(&b.t_start))
    });
    for w in &lanes {
        assert!(w.t_start >= 0.0 && w.t_end >= w.t_start, "{w:?}");
        assert!(w.t_end <= wall + TOL, "interval past total_time: {w:?}");
    }
    for pair in lanes.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if (a.rank, a.worker) == (b.rank, b.worker) {
            assert!(a.t_end <= b.t_start + TOL, "overlap: {a:?} vs {b:?}");
        }
    }
}

/// The critical path is sandwiched between the best single-rank chain
/// and the wall clock.
#[test]
fn critical_path_respects_its_bounds() {
    let r = traced_run();
    let cp = critical_path(&r.trace);
    assert!(cp.length > 0.0);
    assert!(
        cp.length >= cp.max_rank_useful - TOL,
        "path {} shorter than best program-order chain {}",
        cp.length,
        cp.max_rank_useful
    );
    assert!(
        cp.length <= cp.wall + TOL,
        "path {} exceeds wall {}",
        cp.length,
        cp.wall
    );
    assert!(!cp.segments.is_empty());
    // Segment useful time sums to the path length.
    let sum: f64 = cp.segments.iter().map(|s| s.useful).sum();
    assert!((sum - cp.length).abs() <= 1e-6, "segments {sum} vs length {}", cp.length);
}

/// The post-hoc lost-cycles decomposition of a traced run agrees with
/// the online POP rollup of the very same run to 1e-9 — both consume
/// identical `(start, end)` pairs.
#[test]
fn lost_cycles_agrees_with_online_pop_rollup() {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    cfpd_telemetry::set_enabled(true);
    cfpd_telemetry::reset();
    let r = traced_run();
    cfpd_telemetry::set_enabled(false);
    let report = cfpd_telemetry::pop::report().expect("POP rollup captured");
    cfpd_telemetry::reset();

    let lc = lost_cycles(&r.trace);
    assert!(
        (lc.parallel_efficiency - report.parallel_efficiency).abs() <= TOL,
        "PE: post-hoc {} vs online {}",
        lc.parallel_efficiency,
        report.parallel_efficiency
    );
    assert!(
        (lc.load_balance - report.load_balance).abs() <= TOL,
        "LB: post-hoc {} vs online {}",
        lc.load_balance,
        report.load_balance
    );
    assert!(
        (lc.comm_efficiency - report.comm_efficiency).abs() <= TOL,
        "CommE: post-hoc {} vs online {}",
        lc.comm_efficiency,
        report.comm_efficiency
    );
    assert!((lc.wall - report.wall_time).abs() <= TOL);
}

/// Two identical-seed traced runs produce a zero structural delta:
/// same ranks, same per-(rank, phase) event counts, same messages.
#[test]
fn identical_seed_runs_diff_to_zero() {
    let a = export_summary(&traced_run().trace);
    let b = export_summary(&traced_run().trace);
    let report = diff_summaries(&a, &b).expect("summaries parse");
    assert!(
        report.is_zero(),
        "identical-seed runs structurally diverged:\n{}",
        report.render()
    );
    assert!(report.render().contains("ZERO"));
}

/// Tracing is an observer: the logical event log (the physics) of a
/// traced run is bit-identical to an untraced one.
#[test]
fn tracing_leaves_the_physics_untouched() {
    let traced = traced_run();
    let plain = run_simulation_opts(&golden_config(), RANKS, 1, &RunOptions::default());
    assert_eq!(traced.logical, plain.logical, "tracing perturbed the logical log");
    assert_eq!(traced.census, plain.census);
}
