//! Property-based tests of the mesh substrate: conformity, positive
//! volumes, boundary classification and locator invariants over
//! randomized airway geometries. Runs on the in-repo `cfpd-testkit`
//! property runner (no external dependencies).

use cfpd_mesh::{generate_airway, AirwaySpec, BoundaryKind, TubeParams};
use cfpd_particles::Locator;
use cfpd_testkit::prop::{check, f64_range, map, usize_range, Gen, PropConfig};

fn spec_gen(min_generations: usize) -> impl Gen<Value = AirwaySpec> {
    let raw = (
        usize_range(min_generations, 3), // generations ..=2
        usize_range(5, 13),              // n_theta 5..=12
        usize_range(1, 4),               // n_bl_layers 1..=3
        usize_range(1, 4),               // n_core_rings 1..=3
        f64_range(0.1, 0.5),             // bl thickness fraction
        f64_range(1.2, 2.0),             // bl growth
        f64_range(0.7, 0.99),            // taper
    );
    map(raw, |(generations, n_theta, n_bl, n_core, bl_frac, bl_growth, taper)| AirwaySpec {
        generations,
        tube: TubeParams {
            n_theta,
            n_bl_layers: n_bl,
            n_core_rings: n_core,
            bl_thickness_frac: bl_frac,
            bl_growth,
        },
        axial_segments_per_radius: 1.0,
        taper,
        ..AirwaySpec::default()
    })
}

fn arb_spec() -> impl Gen<Value = AirwaySpec> {
    spec_gen(0)
}

/// Every generated element has strictly positive volume.
#[test]
fn volumes_always_positive() {
    check("volumes_always_positive", PropConfig::cases(12), &arb_spec(), |spec| {
        let airway = generate_airway(spec).unwrap();
        assert!(airway.mesh.negative_volume_elements().is_empty());
    });
}

/// Conformity: interior faces pair exactly; total face count checks
/// out (2·interior + exterior = Σ faces).
#[test]
fn faces_pair_consistently() {
    check("faces_pair_consistently", PropConfig::cases(12), &arb_spec(), |spec| {
        let airway = generate_airway(spec).unwrap();
        let mesh = &airway.mesh;
        let fns = mesh.face_neighbors();
        let mut interior = 0usize;
        let mut exterior = 0usize;
        for e in 0..mesh.num_elements() {
            for (f, nb) in fns.faces(e).iter().enumerate() {
                match nb {
                    Some(other) => {
                        // Symmetry: the neighbor must point back at us.
                        let back = fns
                            .faces(*other as usize)
                            .iter()
                            .flatten()
                            .any(|&x| x as usize == e);
                        assert!(back, "face ({e},{f}) asymmetric");
                        interior += 1;
                    }
                    None => exterior += 1,
                }
            }
        }
        let total: usize = (0..mesh.num_elements())
            .map(|e| mesh.kinds[e].num_faces())
            .sum();
        assert_eq!(interior + exterior, total);
        assert_eq!(interior % 2, 0);
        // Every exterior face is classified on the boundary list.
        assert_eq!(mesh.boundary.len(), exterior);
    });
}

/// The element mix always contains all three families once there is
/// at least one junction (generations >= 1, enforced by the generator —
/// the testkit analogue of `prop_assume!`).
#[test]
fn hybrid_mix_present() {
    check("hybrid_mix_present", PropConfig::cases(12), &spec_gen(1), |spec| {
        let airway = generate_airway(spec).unwrap();
        let s = airway.mesh.stats();
        assert!(s.num_tets > 0);
        assert!(s.num_prisms > 0);
        assert!(s.num_pyramids > 0);
    });
}

/// Boundary kinds: inlet exists, walls dominate, and with ≥1
/// generation there are multiple outlet regions.
#[test]
fn boundary_classification_sane() {
    check("boundary_classification_sane", PropConfig::cases(12), &arb_spec(), |spec| {
        let airway = generate_airway(spec).unwrap();
        let inlet = airway.mesh.boundary.iter().filter(|b| b.2 == BoundaryKind::Inlet).count();
        let wall = airway.mesh.boundary.iter().filter(|b| b.2 == BoundaryKind::Wall).count();
        let outlet = airway.mesh.boundary.iter().filter(|b| b.2 == BoundaryKind::Outlet).count();
        assert!(inlet > 0);
        assert!(outlet > 0);
        assert!(wall > inlet + outlet);
    });
}

/// Locator invariant: the centroid of any element is found inside
/// that element (or an element containing the same point).
#[test]
fn locator_finds_centroids() {
    check("locator_finds_centroids", PropConfig::cases(12), &arb_spec(), |spec| {
        let airway = generate_airway(spec).unwrap();
        let locator = Locator::new(&airway.mesh);
        let ne = airway.mesh.num_elements();
        for e in (0..ne).step_by((ne / 23).max(1)) {
            let c = airway.mesh.centroid(e);
            let found = locator.locate_global(c);
            assert!(found.is_some(), "centroid of {e} not found");
            let f = found.unwrap() as usize;
            let h = airway.mesh.volume(f).abs().cbrt();
            assert!(locator.contains(f, c, 1e-6 * h));
        }
    });
}

/// Mesh statistics are internally consistent.
#[test]
fn stats_consistent() {
    check("stats_consistent", PropConfig::cases(12), &arb_spec(), |spec| {
        let airway = generate_airway(spec).unwrap();
        let s = airway.mesh.stats();
        assert_eq!(s.num_tets + s.num_pyramids + s.num_prisms, s.num_elements);
        assert!(s.total_volume > 0.0);
        assert!(s.min_volume > 0.0);
        assert!(s.max_volume >= s.min_volume);
    });
}
