//! Property-based tests of the mesh substrate: conformity, positive
//! volumes, boundary classification and locator invariants over
//! randomized airway geometries.

use cfpd_mesh::{generate_airway, AirwaySpec, BoundaryKind, TubeParams};
use cfpd_particles::Locator;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = AirwaySpec> {
    (
        0usize..=2,
        5usize..=12,
        1usize..=3,
        1usize..=3,
        0.1f64..0.5,
        1.2f64..2.0,
        0.7f64..0.99,
    )
        .prop_map(
            |(generations, n_theta, n_bl, n_core, bl_frac, bl_growth, taper)| AirwaySpec {
                generations,
                tube: TubeParams {
                    n_theta,
                    n_bl_layers: n_bl,
                    n_core_rings: n_core,
                    bl_thickness_frac: bl_frac,
                    bl_growth,
                },
                axial_segments_per_radius: 1.0,
                taper,
                ..AirwaySpec::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated element has strictly positive volume.
    #[test]
    fn volumes_always_positive(spec in arb_spec()) {
        let airway = generate_airway(&spec).unwrap();
        prop_assert!(airway.mesh.negative_volume_elements().is_empty());
    }

    /// Conformity: interior faces pair exactly; total face count checks
    /// out (2·interior + exterior = Σ faces).
    #[test]
    fn faces_pair_consistently(spec in arb_spec()) {
        let airway = generate_airway(&spec).unwrap();
        let mesh = &airway.mesh;
        let fns = mesh.face_neighbors();
        let mut interior = 0usize;
        let mut exterior = 0usize;
        for e in 0..mesh.num_elements() {
            for (f, nb) in fns.faces(e).iter().enumerate() {
                match nb {
                    Some(other) => {
                        // Symmetry: the neighbor must point back at us.
                        let back = fns
                            .faces(*other as usize)
                            .iter()
                            .flatten()
                            .any(|&x| x as usize == e);
                        prop_assert!(back, "face ({e},{f}) asymmetric");
                        interior += 1;
                    }
                    None => exterior += 1,
                }
            }
        }
        let total: usize = (0..mesh.num_elements())
            .map(|e| mesh.kinds[e].num_faces())
            .sum();
        prop_assert_eq!(interior + exterior, total);
        prop_assert_eq!(interior % 2, 0);
        // Every exterior face is classified on the boundary list.
        prop_assert_eq!(mesh.boundary.len(), exterior);
    }

    /// The element mix always contains all three families once there is
    /// at least one junction.
    #[test]
    fn hybrid_mix_present(spec in arb_spec()) {
        prop_assume!(spec.generations >= 1);
        let airway = generate_airway(&spec).unwrap();
        let s = airway.mesh.stats();
        prop_assert!(s.num_tets > 0);
        prop_assert!(s.num_prisms > 0);
        prop_assert!(s.num_pyramids > 0);
    }

    /// Boundary kinds: inlet exists, walls dominate, and with ≥1
    /// generation there are multiple outlet regions.
    #[test]
    fn boundary_classification_sane(spec in arb_spec()) {
        let airway = generate_airway(&spec).unwrap();
        let inlet = airway.mesh.boundary.iter().filter(|b| b.2 == BoundaryKind::Inlet).count();
        let wall = airway.mesh.boundary.iter().filter(|b| b.2 == BoundaryKind::Wall).count();
        let outlet = airway.mesh.boundary.iter().filter(|b| b.2 == BoundaryKind::Outlet).count();
        prop_assert!(inlet > 0);
        prop_assert!(outlet > 0);
        prop_assert!(wall > inlet + outlet);
    }

    /// Locator invariant: the centroid of any element is found inside
    /// that element (or an element containing the same point).
    #[test]
    fn locator_finds_centroids(spec in arb_spec()) {
        let airway = generate_airway(&spec).unwrap();
        let locator = Locator::new(&airway.mesh);
        let ne = airway.mesh.num_elements();
        for e in (0..ne).step_by((ne / 23).max(1)) {
            let c = airway.mesh.centroid(e);
            let found = locator.locate_global(c);
            prop_assert!(found.is_some(), "centroid of {e} not found");
            let f = found.unwrap() as usize;
            let h = airway.mesh.volume(f).abs().cbrt();
            prop_assert!(locator.contains(f, c, 1e-6 * h));
        }
    }

    /// Mesh statistics are internally consistent.
    #[test]
    fn stats_consistent(spec in arb_spec()) {
        let airway = generate_airway(&spec).unwrap();
        let s = airway.mesh.stats();
        prop_assert_eq!(s.num_tets + s.num_pyramids + s.num_prisms, s.num_elements);
        prop_assert!(s.total_volume > 0.0);
        prop_assert!(s.min_volume > 0.0);
        prop_assert!(s.max_volume >= s.min_volume);
    }
}
