//! End-to-end exercise of the live observability plane: the supervisor
//! event feed, `GET /jobs/:id/progress`, lint-clean `/metrics` under a
//! running job, and the post-mortem flight dump a deadline kill leaves
//! behind.
//!
//! This file is deliberately a single test: the flight ring and the POP
//! table are process-global, so the progress/report agreement and the
//! WAL-tail check need a process where no other simulation runs
//! concurrently.

use cfpd_serve::{http_call, lint_prometheus, wal, Daemon, ServeConfig, ServeFaultPlan};
use cfpd_testkit::{parse_json, JsonValue};
use std::path::PathBuf;
use std::time::Duration;

const TINY: &str = "\
[campaign]
name = obsv
[scenario]
ranks = 2
generations = 1
particles = 40
steps = 2
";

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cfpd-obsv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn get(addr: &str, path: &str) -> (u16, String) {
    http_call(addr, "GET", path, "").expect("http")
}

fn f64_at(doc: &JsonValue, path: &[&str]) -> f64 {
    let mut v = doc.clone();
    for key in path {
        v = v.get(key).unwrap_or_else(|| panic!("missing {key} in {doc:?}")).clone();
    }
    v.as_f64().unwrap_or_else(|| panic!("{path:?} is not a number"))
}

#[test]
fn observability_plane_end_to_end() {
    // ----- Part 1: a healthy job under observation ------------------
    let dir = tmp_dir("live");
    let cfg = ServeConfig {
        data_dir: dir.clone(),
        // Stall the first attempt so there is a guaranteed window where
        // the job is running while we hit /metrics and /progress.
        fault: ServeFaultPlan { stall_first_attempts: 1, stall_ms: 200, ..Default::default() },
        ..Default::default()
    };
    let daemon = Daemon::start(cfg).unwrap();
    let addr = daemon.addr().to_string();

    let (code, body) = http_call(&addr, "POST", "/jobs", TINY).unwrap();
    assert_eq!(code, 201, "{body}");

    // While it runs: metrics stay lint-clean, progress serves live
    // counters with finite ETA.
    let mut done = false;
    for _ in 0..600 {
        let (code, metrics) = get(&addr, "/metrics");
        assert_eq!(code, 200);
        lint_prometheus(&metrics).expect("/metrics must lint clean while the job runs");

        let (code, body) = get(&addr, "/jobs/1/progress");
        assert_eq!(code, 200, "{body}");
        let doc = parse_json(&body).expect("progress is valid JSON");
        assert_eq!(doc.get("job").and_then(|v| v.as_u64()), Some(1));
        let eta = f64_at(&doc, &["eta_s"]);
        assert!(eta.is_finite() && eta >= 0.0, "eta_s {eta}");
        if doc.get("state").and_then(|v| v.as_str()) == Some("done") {
            done = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(done, "job never finished");

    // Progress POP numbers agree with the post-run rollup: both sides
    // are the same `pop::report()` f64s through the same shortest
    // round-trip formatter, so parsing back gives bit-equality (the
    // contract pins <= 1e-9).
    let (_, body) = get(&addr, "/jobs/1/progress");
    let doc = parse_json(&body).unwrap();
    let rollup = cfpd_telemetry::pop::report().expect("phase time was attributed");
    for (key, want) in [
        ("parallel_efficiency", rollup.parallel_efficiency),
        ("load_balance", rollup.load_balance),
        ("comm_efficiency", rollup.comm_efficiency),
    ] {
        let got = f64_at(&doc, &["pop", key]);
        assert!(
            (got - want).abs() <= 1e-9,
            "progress pop.{key} {got} vs rollup {want}"
        );
    }

    // The feed replays the whole lifecycle in order, and an exhausted
    // long-poll answers (empty) instead of hanging.
    let (code, body) = get(&addr, "/events?since=0&wait_ms=0");
    assert_eq!(code, 200, "{body}");
    let doc = parse_json(&body).unwrap();
    let events = doc.get("events").and_then(|v| v.as_array()).unwrap().to_vec();
    let kinds: Vec<&str> = events
        .iter()
        .filter(|e| e.get("job").and_then(|v| v.as_u64()) == Some(1))
        .filter_map(|e| e.get("kind").and_then(|v| v.as_str()))
        .collect();
    for (earlier, later) in [("admitted", "started"), ("started", "cell_done"), ("cell_done", "done")] {
        let a = kinds.iter().position(|k| *k == earlier);
        let b = kinds.iter().rposition(|k| *k == later);
        assert!(a.is_some() && b.is_some() && a < b, "{earlier} before {later}: {kinds:?}");
    }
    let last = doc.get("last").and_then(|v| v.as_u64()).unwrap();
    let (code, body) = get(&addr, &format!("/events?since={last}&wait_ms=150"));
    assert_eq!(code, 200);
    let doc = parse_json(&body).unwrap();
    assert!(doc.get("events").and_then(|v| v.as_array()).unwrap().is_empty());

    let (code, _) = http_call(&addr, "POST", "/drain", "").unwrap();
    assert_eq!(code, 200);
    daemon.join();
    let _ = std::fs::remove_dir_all(&dir);

    // ----- Part 2: a deadline kill leaves a digest-valid black box --
    cfpd_flight::reset(); // part 1's events are another daemon's story
    let dir = tmp_dir("deadline");
    let cfg = ServeConfig {
        data_dir: dir.clone(),
        job_deadline: Some(Duration::from_millis(250)),
        fault: ServeFaultPlan { stall_first_attempts: 1, stall_ms: 600, ..Default::default() },
        ..Default::default()
    };
    let daemon = Daemon::start(cfg).unwrap();
    let addr = daemon.addr().to_string();
    let (code, body) = http_call(&addr, "POST", "/jobs", TINY).unwrap();
    assert_eq!(code, 201, "{body}");

    let mut failed = false;
    for _ in 0..600 {
        let (_, body) = get(&addr, "/jobs/1");
        if body.contains("\"state\":\"failed\"") {
            assert!(body.contains("deadline"), "{body}");
            failed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(failed, "deadline never fired");

    // The dump is written right after the Fail transition; give it a beat.
    let dump_path = wal::flight_path(&dir, 1);
    let mut text = String::new();
    for _ in 0..200 {
        if let Ok(t) = std::fs::read_to_string(&dump_path) {
            text = t;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(!text.is_empty(), "no flight dump at {}", dump_path.display());
    let dump = cfpd_flight::parse_dump(&text).expect("dump must digest-verify");

    // Tampering must break the digest guard.
    let tampered = text.replacen(" 1 wal ", " 2 wal ", 1);
    assert!(tampered != text && cfpd_flight::parse_dump(&tampered).is_err());

    // The dump's WAL-mirror tail lines up with the WAL's own records
    // for this job, ending in the deadline Fail.
    let replayed = wal::replay(&dir.join("wal.log"));
    let wal_kinds: Vec<u32> = replayed
        .records
        .iter()
        .filter(|r| r.job_id() == 1)
        .map(|r| r.kind_code())
        .collect();
    let dump_kinds: Vec<u32> = dump
        .events
        .iter()
        .filter(|e| e.kind == cfpd_flight::EventKind::Wal && e.rank == 1)
        .map(|e| e.code)
        .collect();
    assert_eq!(dump_kinds, wal_kinds, "flight WAL mirror must match the WAL");
    assert_eq!(wal_kinds.last(), Some(&9), "last record is the Fail");

    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}
