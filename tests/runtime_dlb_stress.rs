//! Stress and failure-injection tests of the runtime substrate stack:
//! simmpi × runtime × dlb under concurrency.

use cfpd_dlb::DlbCluster;
use cfpd_runtime::{parallel_for, Dep, TaskGraph, ThreadPool};
use cfpd_simmpi::{ReduceOp, Universe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn many_ranks_collectives_stress() {
    // Oversubscribed universe hammering collectives.
    let out = Universe::run(12, |comm| {
        let mut acc = 0.0;
        for round in 0..20 {
            acc += comm.allreduce_f64((comm.rank() + round) as f64, ReduceOp::Sum);
            comm.barrier();
            let all = comm.allgather(comm.rank());
            assert_eq!(all.len(), 12);
        }
        acc
    });
    assert!(out.iter().all(|&x| (x - out[0]).abs() < 1e-12));
}

#[test]
fn repeated_splits_are_independent() {
    Universe::run(8, |comm| {
        for round in 0..5 {
            let color = (comm.rank() + round) % 2;
            let sub = comm.split(color, comm.rank());
            let sum = sub.allreduce_f64(1.0, ReduceOp::Sum);
            assert_eq!(sum as usize, sub.size());
        }
    });
}

#[test]
fn task_graph_random_dependences_all_run_once() {
    let pool = ThreadPool::new(4);
    let n = 300;
    let counter = Arc::new(AtomicUsize::new(0));
    let mut g = TaskGraph::new();
    // Pseudo-random but deterministic dependence pattern mixing all
    // kinds over 20 objects.
    let mut state = 12345u64;
    let mut rand = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for _ in 0..n {
        let obj = rand() % 20;
        let deps = match rand() % 4 {
            0 => vec![Dep::read(obj)],
            1 => vec![Dep::write(obj)],
            2 => vec![Dep::mutex(obj), Dep::mutex(rand() % 20)],
            _ => vec![Dep::readwrite(obj), Dep::read(rand() % 20)],
        };
        let c = Arc::clone(&counter);
        g.add_task(&deps, move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
    }
    let stats = g.execute(&pool);
    assert_eq!(counter.load(Ordering::SeqCst), n);
    assert_eq!(stats.tasks_run, n);
}

#[test]
fn pool_resize_under_load_loses_no_work() {
    let pool = Arc::new(ThreadPool::new(6));
    let hits = Arc::new(AtomicUsize::new(0));
    // A resizer thread flips the active count while regions run.
    let p2 = Arc::clone(&pool);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let s2 = Arc::clone(&stop);
    let resizer = std::thread::spawn(move || {
        let mut n = 1;
        while !s2.load(Ordering::Relaxed) {
            p2.set_active(n % 6 + 1);
            n += 1;
            std::thread::yield_now();
        }
    });
    for _ in 0..100 {
        let h = Arc::clone(&hits);
        parallel_for(&pool, 0..1000, 64, move |r| {
            h.fetch_add(r.len(), Ordering::Relaxed);
        });
    }
    stop.store(true, Ordering::Relaxed);
    resizer.join().unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 100 * 1000);
}

#[test]
fn dlb_with_many_ranks_stays_consistent() {
    let n = 6;
    let cluster = Arc::new(DlbCluster::new_block(n, 2));
    let pools: Vec<Arc<ThreadPool>> = (0..n).map(|_| Arc::new(ThreadPool::new(4))).collect();
    for (r, p) in pools.iter().enumerate() {
        cluster.register(r, Arc::clone(p), 2);
    }
    let c2 = Arc::clone(&cluster);
    let hooks: Arc<dyn cfpd_simmpi::MpiHooks> = Arc::clone(&cluster) as _;
    Universe::run_with_hooks(n, hooks, move |comm| {
        for _ in 0..10 {
            comm.barrier();
        }
        let _ = &c2;
    });
    // After all barriers complete, every pool is back at its ownership.
    for r in 0..n {
        let node = cluster.node_of(r);
        assert_eq!(cluster.node(node).active_of(r), Some(2), "rank {r} not restored");
    }
    let stats = cluster.total_stats();
    assert_eq!(stats.lends, stats.reclaims, "unbalanced lend/reclaim");
}

#[test]
#[should_panic(expected = "deadlock")]
fn recv_without_sender_times_out() {
    // Failure injection: a rank waiting forever must be detected by the
    // deadlock timeout rather than hanging the suite. Uses a tiny
    // timeout via a direct thread to keep the test fast — we exercise
    // the panic path through a 2-rank universe where rank 1 never sends.
    // DEADLOCK_TIMEOUT is 60 s, too slow for a unit test, so we emulate
    // the same condition at the Universe level with a rank panic.
    Universe::run(2, |comm| {
        if comm.rank() == 0 {
            panic!("deadlock: simulated detection");
        } else {
            // Rank 1 would block forever; rank 0's panic aborts the run.
        }
    });
}
