//! Distributed-memory pressure solve with true halo exchanges — the
//! production MPI pattern (node ownership, assembly exchange, ghost
//! updates per CG iteration) running on the virtual cluster, validated
//! live against the serial solution.
//!
//! ```sh
//! cargo run --release --example distributed_solver
//! ```

use cfpd_core::assemble_and_solve_poisson;
use cfpd_mesh::{generate_airway, AirwaySpec, BoundaryKind, Vec3};
use cfpd_partition::{partition_kway, Graph};
use cfpd_simmpi::Universe;
use std::sync::Arc;

fn main() {
    let airway = Arc::new(generate_airway(&AirwaySpec::small()).expect("valid spec"));
    let mesh = &airway.mesh;
    println!(
        "mesh: {} elements, {} nodes; solving the pressure-Poisson system",
        mesh.num_elements(),
        mesh.num_nodes()
    );

    // Element partition (the MPI domain decomposition).
    let n2e = mesh.node_to_elements();
    let adj = mesh.element_adjacency(&n2e);
    let g = Graph::from_csr_unit(&adj);
    let ranks = 4;
    let owner = Arc::new(partition_kway(&g, ranks, 3).parts);

    // Synthetic velocity field driving the divergence RHS.
    let velocity: Arc<Vec<Vec3>> = Arc::new(
        mesh.coords.iter().map(|p| Vec3::new(p.z * 3.0, -p.x, p.y)).collect(),
    );
    // Dirichlet p = 0 at outlets.
    let outlet: Arc<Vec<u32>> = Arc::new({
        let mut s = std::collections::BTreeSet::new();
        for &(e, f, kind) in &mesh.boundary {
            if kind == BoundaryKind::Outlet {
                let nodes = mesh.elem_nodes(e as usize);
                for &li in mesh.kinds[e as usize].faces()[f as usize] {
                    s.insert(nodes[li]);
                }
            }
        }
        s.into_iter().collect()
    });

    // Serial reference.
    let x_serial = {
        let mut a = cfpd_solver::CsrMatrix::from_mesh(mesh, &n2e);
        let mut rhs = vec![vec![0.0; mesh.num_nodes()]];
        let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();
        let plan = cfpd_solver::AssemblyPlan::new(
            mesh,
            elems,
            cfpd_solver::AssemblyStrategy::Serial,
            1,
        );
        let pool = cfpd_runtime::ThreadPool::new(1);
        cfpd_solver::assemble_poisson(
            &pool,
            &cfpd_solver::RefElement::all(),
            mesh,
            &plan,
            &velocity,
            cfpd_solver::FluidProps::default(),
            1e-3,
            &mut a,
            &mut rhs,
        );
        for &v in outlet.iter() {
            a.set_dirichlet_row(v as usize);
            rhs[0][v as usize] = 0.0;
        }
        let mut x = vec![0.0; mesh.num_nodes()];
        let s = cfpd_solver::cg(&a, &rhs[0], &mut x, 1e-10, 5000);
        println!("serial CG: {} iterations, residual {:.2e}", s.iterations, s.residual);
        x
    };

    // Distributed solve on 4 virtual ranks.
    let am = Arc::clone(&airway);
    let ow = Arc::clone(&owner);
    let vel = Arc::clone(&velocity);
    let out = Arc::clone(&outlet);
    let results = Universe::run(ranks, move |comm| {
        let (owned, values, stats) = assemble_and_solve_poisson(
            &am.mesh,
            &ow,
            &comm,
            &vel,
            cfpd_solver::FluidProps::default(),
            1e-3,
            &out,
            1e-10,
            5000,
        );
        if comm.rank() == 0 {
            println!(
                "distributed CG: {} iterations, residual {:.2e}",
                stats.iterations, stats.residual
            );
        }
        (comm.rank(), owned, values)
    });

    // Compare every owned nodal value against the serial solution.
    let scale = x_serial.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-12);
    let mut max_rel = 0.0f64;
    let mut total_owned = 0usize;
    for (rank, owned, values) in &results {
        total_owned += owned.len();
        for (&g, &v) in owned.iter().zip(values) {
            max_rel = max_rel.max((v - x_serial[g as usize]).abs() / scale);
        }
        println!("rank {rank}: owns {} of {} nodes", owned.len(), mesh.num_nodes());
    }
    assert_eq!(total_owned, mesh.num_nodes(), "ownership must partition the nodes");
    println!("max relative deviation from the serial solution: {max_rel:.2e}");
    assert!(max_rel < 1e-6, "distributed and serial solutions must agree");
    println!("distributed == serial ✓");
}
