//! Compare the three assembly parallelization strategies of the paper's
//! Fig. 4 on the real host: Atomics (`omp atomic`), Coloring
//! (Farhat–Crivelli) and Multidependences (`mutexinoutset` subdomain
//! tasks), against the serial reference — verifying they assemble the
//! same system and measuring their real single-machine cost.
//!
//! ```sh
//! cargo run --release --example strategy_comparison
//! ```

use cfpd_mesh::{generate_airway, AirwaySpec, Vec3};
use cfpd_runtime::ThreadPool;
use cfpd_solver::{
    assemble_momentum, AssemblyPlan, AssemblyStrategy, CsrMatrix, FluidProps, RefElement,
};

fn main() {
    let airway = generate_airway(&AirwaySpec::small()).expect("valid spec");
    let mesh = &airway.mesh;
    let n2e = mesh.node_to_elements();
    let template = CsrMatrix::from_mesh(mesh, &n2e);
    let refs = RefElement::all();
    let pool = ThreadPool::new(4);
    let velocity: Vec<Vec3> =
        mesh.coords.iter().map(|p| Vec3::new(p.z * 2.0, p.x, -p.y)).collect();
    let elems: Vec<u32> = (0..mesh.num_elements() as u32).collect();

    println!(
        "assembling {} hybrid elements into a {}x{} sparse system ({} nnz)\n",
        mesh.num_elements(),
        template.n,
        template.n,
        template.nnz()
    );
    println!(
        "{:<10} {:>10} {:>12} {:>8} {:>7} {:>14}",
        "strategy", "time [ms]", "atomic adds", "colors", "tasks", "max |Δ| vs ref"
    );

    let mut reference: Option<Vec<f64>> = None;
    for strategy in AssemblyStrategy::ALL {
        let plan = AssemblyPlan::new(mesh, elems.clone(), strategy, 24);
        let mut a = template.clone();
        let mut rhs = vec![vec![0.0; mesh.num_nodes()]; 3];
        let t0 = std::time::Instant::now();
        let zero_p = vec![0.0; mesh.num_nodes()];
        let stats = assemble_momentum(
            &pool,
            &refs,
            mesh,
            &plan,
            &velocity,
            &zero_p,
            FluidProps::default(),
            1e-4,
            Vec3::new(0.0, 0.0, -9.81),
            &mut a,
            &mut rhs,
        );
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        let max_diff = reference
            .as_ref()
            .map(|r| {
                a.values
                    .iter()
                    .zip(r)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0f64, f64::max)
            })
            .unwrap_or(0.0);
        if reference.is_none() {
            reference = Some(a.values.clone());
        }
        println!(
            "{:<10} {:>10.2} {:>12} {:>8} {:>7} {:>14.3e}",
            strategy.label(),
            dt,
            stats.atomic_adds,
            stats.colors,
            stats.tasks,
            max_diff
        );
    }
    println!(
        "\nAll strategies assemble the same matrix (differences are FP\n\
         summation order only). On the paper's clusters the strategies\n\
         differ sharply in IPC — see `cargo bench` figures 6 and 7."
    );
}
