//! Quickstart: build a small airway mesh, develop the inhalation flow,
//! inject drug particles and watch them transport for a few steps —
//! the whole public API in ~60 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cfpd_core::FluidSolver;
use cfpd_mesh::{generate_airway, AirwaySpec, Vec3};
use cfpd_particles::{inject_at_inlet, step_particles, Locator, ParticleProps, ParticleSet};
use cfpd_runtime::ThreadPool;
use cfpd_solver::{AssemblyStrategy, FluidProps};

fn main() {
    // 1. A small bronchial tree: trachea + 2 bifurcation generations.
    let airway = generate_airway(&AirwaySpec::small()).expect("valid spec");
    let stats = airway.mesh.stats();
    println!(
        "mesh: {} elements ({} tets, {} pyramids, {} prisms), {} nodes",
        stats.num_elements, stats.num_tets, stats.num_pyramids, stats.num_prisms, stats.num_nodes
    );

    // 2. Fluid solver over all elements with the multidependences
    //    assembly strategy (the paper's best performer).
    let elems: Vec<u32> = (0..airway.mesh.num_elements() as u32).collect();
    let mut fluid = FluidSolver::new(
        &airway.mesh,
        elems,
        AssemblyStrategy::Multidep,
        16,                       // subdomain tasks
        FluidProps::default(),    // air
        1e-3,                     // dt [s]
        airway.inlet_direction * 1.5, // rapid inhalation, 1.5 m/s
        1e-6,
        500,
    );
    let pool = ThreadPool::new(2);

    // 3. Inject 5 µm droplets at the inlet.
    let locator = Locator::new(&airway.mesh);
    let mut particles = ParticleSet::default();
    let injected = inject_at_inlet(
        &mut particles,
        &locator,
        airway.inlet_center,
        airway.inlet_direction,
        airway.inlet_radius,
        1.5,
        ParticleProps::default(),
        500,
        42,
    );
    println!("injected {injected} particles at the inlet");

    // 4. Time-step flow and particles together (synchronous mode).
    for step in 0..5 {
        let report = fluid.step(&pool);
        step_particles(
            &mut particles,
            &locator,
            &fluid.velocity,
            1.14,
            1.9e-5,
            Vec3::new(0.0, 0.0, -9.81),
            1e-3,
        );
        let census = particles.census();
        println!(
            "step {step}: assembly {:.1} ms, solvers {:.1}+{:.1} ms, sgs {:.1} ms | \
             mean speed {:.3} m/s | particles active {} deposited {} escaped {}",
            report.t_assembly * 1e3,
            report.t_solver1 * 1e3,
            report.t_solver2 * 1e3,
            report.t_sgs * 1e3,
            fluid.mean_speed(),
            census.active,
            census.deposited,
            census.escaped,
        );
    }
}
