//! The paper's runtime-technique showcase on the virtual cluster: run
//! the same simulation in synchronous and coupled modes (Fig. 3), with
//! and without DLB, on real rank threads with real LeWI core lending —
//! then print the per-phase trace, the Lₙ load-balance metrics and the
//! DLB activity.
//!
//! ```sh
//! cargo run --release --example coupled_dlb
//! ```

use cfpd_core::{run_simulation, ExecutionMode, SimulationConfig};
use cfpd_mesh::AirwaySpec;
use cfpd_trace::render_timeline;

fn main() {
    let base = SimulationConfig {
        airway: AirwaySpec { generations: 1, ..AirwaySpec::small() },
        num_particles: 300,
        steps: 3,
        solver_tol: 1e-5,
        solver_max_iters: 300,
        ..Default::default()
    };

    // --- synchronous mode, 3 ranks -----------------------------------
    println!("=== synchronous mode, 3 ranks x 2 threads ===");
    let sync = run_simulation(&base, 3, 2, false);
    println!("{}", render_timeline(&sync.trace, 100, 8));
    println!("per-phase load balance (eq. 9) and time share:");
    for row in &sync.breakdown {
        println!(
            "  {:<16} L{} = {:.2}   {:.1}% of step",
            row.phase.name(),
            sync.trace.num_ranks,
            row.load_balance,
            row.pct_time
        );
    }
    println!(
        "particles: {:?}, total {:.3}s\n",
        sync.census, sync.total_time
    );

    // --- coupled mode (2 fluid + 1 particle ranks) --------------------
    println!("=== coupled mode, 2 fluid + 1 particle ranks ===");
    let coupled_cfg = SimulationConfig {
        mode: ExecutionMode::Coupled { fluid: 2, particles: 1 },
        ..base.clone()
    };
    let coupled = run_simulation(&coupled_cfg, 0, 2, false);
    println!("{}", render_timeline(&coupled.trace, 100, 8));
    println!("particles: {:?}, total {:.3}s\n", coupled.census, coupled.total_time);

    // --- coupled mode with DLB ----------------------------------------
    println!("=== coupled mode + DLB (LeWI lending on blocking MPI calls) ===");
    let with_dlb = run_simulation(&coupled_cfg, 0, 2, true);
    let stats = with_dlb.dlb.expect("dlb stats");
    println!(
        "DLB activity: {} lends, {} grants, {} reclaims, {} core-loans",
        stats.lends, stats.grants, stats.reclaims, stats.cores_lent_total
    );
    println!(
        "particles: {:?}, total {:.3}s",
        with_dlb.census, with_dlb.total_time
    );
    println!(
        "\nNote: this box may have a single hardware core, so wall-clock\n\
         speedups are not observable here — the lending *behaviour* is what\n\
         this example demonstrates; the paper-scale performance effects are\n\
         reproduced by the cfpd-bench figure harnesses (cargo bench)."
    );
}
