//! The paper's motivating application (§1–2): predicting how much of an
//! inhaled aerosol dose deposits in the extrathoracic airways versus
//! reaching the deeper lung, as a function of particle size — the
//! deposition maps that drive inhaler-therapy optimization.
//!
//! Runs the full pipeline per particle size: developed inhalation flow
//! on the bronchial tree, Lagrangian tracking with Ganser drag, wall
//! deposition and distal escape accounting.
//!
//! ```sh
//! cargo run --release --example respiratory_deposition
//! ```

use cfpd_core::{potential_flow, FluidSolver};
use cfpd_mesh::{generate_airway, AirwaySpec, Vec3};
use cfpd_particles::{inject_at_inlet, step_particles, Locator, ParticleProps, ParticleSet};
use cfpd_runtime::ThreadPool;
use cfpd_solver::{AssemblyStrategy, FluidProps};

fn main() {
    let airway = generate_airway(&AirwaySpec {
        generations: 3,
        ..AirwaySpec::small()
    })
    .expect("valid spec");
    println!(
        "airway tree: {} branches, {} junctions, {} elements\n",
        airway.num_tubes,
        airway.num_junctions,
        airway.mesh.num_elements()
    );

    // Develop the inhalation flow first (the particle transport then
    // runs through a quasi-steady field, as in a rapid-inhalation
    // snapshot study).
    let elems: Vec<u32> = (0..airway.mesh.num_elements() as u32).collect();
    let mut fluid = FluidSolver::new(
        &airway.mesh,
        elems,
        AssemblyStrategy::Multidep,
        16,
        FluidProps::default(),
        2e-2,
        airway.inlet_direction * 2.0, // rapid inhalation
        1e-6,
        800,
    );
    let pool = ThreadPool::new(2);
    // A few viscous steps demonstrate the solver phases (assembly,
    // momentum/pressure solves, SGS — the pipeline the paper profiles)...
    for _ in 0..5 {
        fluid.step(&pool);
    }
    println!(
        "viscous solver field: mean {:.3} m/s, max {:.3} m/s",
        fluid.mean_speed(),
        fluid.max_speed()
    );
    // ...while the *transport* uses the potential-flow core field, which
    // is weakly divergence-free and exactly non-penetrating at walls —
    // the properties Lagrangian deposition statistics depend on
    // (DESIGN.md §7 documents why the miniature viscous field is not
    // suited for long advection horizons).
    let transport_field = potential_flow(&airway, 2.0);
    let mean_t: f64 =
        transport_field.iter().map(|v| v.norm()).sum::<f64>() / transport_field.len() as f64;
    println!("potential transport field: mean {mean_t:.3} m/s\n");

    println!(
        "{:>10}  {:>9}  {:>9}  {:>9}  {:>7}",
        "size [µm]", "deposited", "escaped", "active", "lost"
    );
    let locator = Locator::new(&airway.mesh);
    for diameter_um in [1.0, 2.5, 5.0, 10.0, 20.0, 40.0] {
        let props = ParticleProps { diameter: diameter_um * 1e-6, density: 1000.0 };
        let mut particles = ParticleSet::default();
        inject_at_inlet(
            &mut particles,
            &locator,
            airway.inlet_center,
            airway.inlet_direction,
            airway.inlet_radius,
            2.0,
            props,
            1000,
            7,
        );
        // Track until the fate of (almost) every particle is decided.
        // dt keeps per-step displacement below the element size so
        // particles cannot tunnel through walls at bends.
        for _ in 0..3000 {
            step_particles(
                &mut particles,
                &locator,
                &transport_field,
                1.14,
                1.9e-5,
                Vec3::new(0.0, 0.0, -9.81),
                5e-4,
            );
            if particles.census().active == 0 {
                break;
            }
        }
        let c = particles.census();
        let n = particles.len() as f64;
        println!(
            "{:>10.1}  {:>8.1}%  {:>8.1}%  {:>8.1}%  {:>7}",
            diameter_um,
            100.0 * c.deposited as f64 / n,
            100.0 * c.escaped as f64 / n,
            100.0 * c.active as f64 / n,
            c.lost
        );
    }
    println!(
        "\nExpected physics: large particles deposit in the upper airways\n\
         (inertial impaction at bends/junctions grows with d²), small ones\n\
         follow the flow into the deeper lung — the fraction the paper's\n\
         CFPD methodology aims to predict and improve."
    );

    // Deposition map by branch generation for a mid-size aerosol — the
    // clinically-relevant output (where in the tree does the dose land?).
    println!("\ndeposition map by branch generation (10 µm aerosol):");
    let props = ParticleProps { diameter: 10e-6, density: 1000.0 };
    let mut particles = ParticleSet::default();
    inject_at_inlet(
        &mut particles,
        &locator,
        airway.inlet_center,
        airway.inlet_direction,
        airway.inlet_radius,
        2.0,
        props,
        2000,
        11,
    );
    for _ in 0..3000 {
        step_particles(
            &mut particles,
            &locator,
            &transport_field,
            1.14,
            1.9e-5,
            Vec3::new(0.0, 0.0, -9.81),
            5e-4,
        );
        if particles.census().active == 0 {
            break;
        }
    }
    let max_gen = *airway.elem_generation.iter().max().unwrap() as usize;
    let mut per_gen = vec![0usize; max_gen + 1];
    for i in 0..particles.len() {
        if particles.state[i] == cfpd_particles::ParticleState::Deposited {
            per_gen[airway.elem_generation[particles.elem[i] as usize] as usize] += 1;
        }
    }
    let total_dep: usize = per_gen.iter().sum();
    for (g, &n) in per_gen.iter().enumerate() {
        let bar = "#".repeat(n * 40 / total_dep.max(1));
        println!(
            "  gen {g}: {:>5.1}%  {bar}",
            100.0 * n as f64 / particles.len() as f64
        );
    }
    println!(
        "  (escaped to deeper lung: {:>4.1}%)",
        100.0 * particles.census().escaped as f64 / particles.len() as f64
    );
}
